#include "src/tcad/transport.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stco::tcad {
namespace {

TftDevice ntype_device() {
  TftDevice dev;
  dev.semi = igzo_params();
  dev.length = 2e-6;
  dev.width = 10e-6;
  dev.t_ox = 100e-9;
  dev.t_ch = 40e-9;
  dev.contact_len = 0.4e-6;
  return dev;
}

TEST(Transport, OxideCapacitance) {
  TftDevice dev;
  dev.t_ox = 100e-9;
  dev.oxide.eps_r = 3.9;
  EXPECT_NEAR(oxide_capacitance(dev), 3.9 * 8.854e-12 / 100e-9, 1e-7);
}

TEST(Transport, SheetChargeIncreasesWithGateBias) {
  const auto dev = ntype_device();
  const double q1 = sheet_charge(dev, 1.0, 0.0);
  const double q3 = sheet_charge(dev, 3.0, 0.0);
  const double q5 = sheet_charge(dev, 5.0, 0.0);
  EXPECT_GT(q3, q1);
  EXPECT_GT(q5, q3);
}

TEST(Transport, SheetChargeApproachesCoxLaw) {
  // Deep in accumulation, dQ/dVg ~ Cox.
  const auto dev = ntype_device();
  const double cox = oxide_capacitance(dev);
  const double q4 = sheet_charge(dev, 4.0, 0.0);
  const double q5 = sheet_charge(dev, 5.0, 0.0);
  EXPECT_NEAR((q5 - q4) / cox, 1.0, 0.25);
}

TEST(Transport, SheetChargeDecreasesWithChannelPotential) {
  const auto dev = ntype_device();
  EXPECT_GT(sheet_charge(dev, 3.0, 0.0), sheet_charge(dev, 3.0, 1.0));
  EXPECT_GT(sheet_charge(dev, 3.0, 1.0), sheet_charge(dev, 3.0, 2.5));
}

TEST(Transport, TransferCurveMonotonicAndSpansDecades) {
  const auto dev = ntype_device();
  const auto curve = transfer_curve(dev, 2.0, {-2, -1, 0, 1, 2, 3, 4, 5});
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_GE(curve[i].id, curve[i - 1].id * 0.999);
  EXPECT_GT(curve.back().id / std::max(curve.front().id, 1e-30), 1e3);
}

TEST(Transport, OutputCurveSaturates) {
  const auto dev = ntype_device();
  const auto curve = output_curve(dev, 4.0, {0.5, 1, 2, 4, 6, 8});
  // Monotone nondecreasing.
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_GE(curve[i].id, curve[i - 1].id * 0.999);
  // Saturation: growth from 6 V -> 8 V much smaller than from 0.5 V -> 2 V.
  const double early_slope = (curve[2].id - curve[0].id) / 1.5;
  const double late_slope = (curve[5].id - curve[4].id) / 2.0;
  EXPECT_LT(late_slope, 0.25 * early_slope);
}

TEST(Transport, OffCurrentFloorsAtSrhLeakage) {
  const auto dev = ntype_device();
  const double vd = 2.0;
  const double ioff = drain_current(dev, Bias{-5.0, vd, 0.0});
  EXPECT_GE(ioff, srh_leakage(dev, vd));
  EXPECT_LT(ioff, 100.0 * (srh_leakage(dev, vd) + 1e-12 * vd));
}

TEST(Transport, CurrentScalesWithWidthOverLength) {
  auto dev = ntype_device();
  const Bias on{4.0, 2.0, 0.0};
  const double i1 = drain_current(dev, on);
  dev.width *= 2.0;
  const double i2 = drain_current(dev, on);
  EXPECT_NEAR(i2 / i1, 2.0, 0.05);
}

TEST(Transport, ZeroVdsGivesZeroCurrent) {
  const auto dev = ntype_device();
  EXPECT_DOUBLE_EQ(drain_current(dev, Bias{3.0, 0.0, 0.0}), 0.0);
}

TEST(Transport, PTypeConductsUnderNegativeBias) {
  TftDevice dev = ntype_device();
  dev.semi = cnt_params();
  const double on = drain_current(dev, Bias{-5.0, -2.0, 0.0});
  const double off = drain_current(dev, Bias{2.0, -2.0, 0.0});
  EXPECT_GT(on, 100.0 * off);
}

}  // namespace
}  // namespace stco::tcad
