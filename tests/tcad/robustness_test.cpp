#include <gtest/gtest.h>

#include <cmath>

#include "src/tcad/drift_diffusion.hpp"
#include "src/tcad/poisson.hpp"
#include "src/tcad/transport.hpp"

namespace stco::tcad {
namespace {

TftDevice small_device() {
  TftDevice dev;
  dev.semi = igzo_params();  // n-type, well behaved
  dev.length = 2e-6;
  dev.contact_len = 0.4e-6;
  dev.t_ox = 100e-9;
  dev.t_ch = 40e-9;
  return dev;
}

bool all_finite(const numeric::Vec& v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

// A well-behaved solve records one ladder entry that succeeded directly.
TEST(Robustness, PoissonCleanSolveCountsDirectSuccess) {
  const auto dev = small_device();
  const auto sol = solve_poisson(dev, Bias{0.0, 0.0, 0.0}, 12, 4, 3);
  ASSERT_TRUE(sol.converged);
  EXPECT_EQ(sol.status.reason, numeric::SolveReason::kOk);
  EXPECT_EQ(sol.stats.attempts, 1u);
  EXPECT_EQ(sol.stats.direct_success, 1u);
  EXPECT_EQ(sol.stats.continuation_retries, 0u);
  EXPECT_TRUE(sol.stats.clean());
}

// With the Newton iteration cap squeezed below what an abrupt full-bias
// solve needs, the direct attempt fails and the bias-continuation ladder
// must recover by walking the contacts up in warm-started fractions.
TEST(Robustness, PoissonContinuationRecoversSteepBias) {
  const auto dev = small_device();
  const Bias steep{3.0, 3.0, 0.0};
  const auto mesh = build_mesh(dev, steep, 12, 4, 3);
  PoissonOptions opts;
  // A cold full-bias solve needs ~24 Newton iterations on this mesh while
  // warm-started fractional stages need at most ~10, so 12 fails the direct
  // attempt and only the continuation ladder can reach convergence.
  opts.max_newton = 12;
  const auto sol = solve_poisson(dev, steep, mesh, opts);
  ASSERT_TRUE(sol.converged);
  EXPECT_EQ(sol.status.reason, numeric::SolveReason::kOk);
  EXPECT_EQ(sol.stats.direct_success, 0u);
  EXPECT_EQ(sol.stats.recovered, 1u);
  EXPECT_GE(sol.stats.continuation_retries, 2u);
  EXPECT_GT(sol.status.retries, 0u);
  EXPECT_TRUE(all_finite(sol.potential));
  // The final continuation stage solved the *target* boundary conditions.
  for (std::size_t i = 0; i < mesh.num_nodes(); ++i) {
    if (mesh.node(i).dirichlet) {
      EXPECT_NEAR(sol.potential[i], mesh.node(i).dirichlet_value, 1e-6);
    }
  }
}

// Continuation respects the shared iteration budget: exhausting it yields
// a clean structured failure (no NaNs, reason names the budget) instead of
// ramping forever.
TEST(Robustness, PoissonBudgetExhaustionFailsCleanly) {
  const auto dev = small_device();
  const Bias steep{6.0, 6.0, 0.0};
  const auto mesh = build_mesh(dev, steep, 12, 4, 3);
  PoissonOptions opts;
  opts.max_newton = 5;
  opts.continuation.iteration_budget = 8;
  const auto sol = solve_poisson(dev, steep, mesh, opts);
  EXPECT_FALSE(sol.converged);
  EXPECT_EQ(sol.status.reason, numeric::SolveReason::kBudgetExceeded);
  EXPECT_GE(sol.stats.budget_exhausted, 1u);
  EXPECT_GE(sol.stats.failures, 1u);
  EXPECT_EQ(sol.stats.recovered, 0u);
  EXPECT_TRUE(all_finite(sol.potential));
  EXPECT_TRUE(all_finite(sol.electron_density));
}

// Disabling continuation turns the same squeezed solve into a plain
// structured failure — the ladder never fires.
TEST(Robustness, PoissonContinuationCanBeDisabled) {
  const auto dev = small_device();
  const Bias steep{6.0, 6.0, 0.0};
  PoissonOptions opts;
  opts.max_newton = 5;
  opts.continuation.enabled = false;
  const auto sol = solve_poisson(dev, steep, build_mesh(dev, steep, 12, 4, 3), opts);
  EXPECT_FALSE(sol.converged);
  EXPECT_EQ(sol.status.reason, numeric::SolveReason::kMaxIterations);
  EXPECT_EQ(sol.stats.continuation_retries, 0u);
  EXPECT_EQ(sol.stats.failures, 1u);
  EXPECT_TRUE(all_finite(sol.potential));
}

// Transport: a healthy bias point produces a valid structured result that
// agrees with the legacy scalar entry point.
TEST(Robustness, TransportResultMatchesLegacyEntryPoint) {
  const auto dev = small_device();
  const Bias bias{4.0, 2.0, 0.0};
  const auto r = drain_current_ex(dev, bias);
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(std::isfinite(r.id));
  EXPECT_GT(r.id, 0.0);
  EXPECT_DOUBLE_EQ(drain_current(dev, bias), r.id);
}

// Transport: starving the whole gradual-channel integration of budget
// fails closed — id is zeroed, never a partially-integrated garbage value.
TEST(Robustness, TransportBudgetExhaustionFailsClosed) {
  const auto dev = small_device();
  const Bias bias{4.0, 2.0, 0.0};
  TransportOptions opts;
  opts.continuation.iteration_budget = 1;
  const auto r = drain_current_ex(dev, bias, opts);
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.id, 0.0);
  EXPECT_EQ(r.status.reason, numeric::SolveReason::kBudgetExceeded);
  EXPECT_GE(r.stats.budget_exhausted, 1u);
}

// Drift-diffusion: budget exhaustion surfaces as a structured failure with
// finite fields, and the counters record what the ladder consumed.
TEST(Robustness, DriftDiffusionBudgetExhaustionFailsCleanly) {
  const auto dev = small_device();
  const Bias bias{3.0, 1.0, 0.0};
  const auto mesh = build_mesh(dev, bias, 10, 4, 3);
  DriftDiffusionOptions opts;
  opts.continuation.iteration_budget = 2;
  const auto sol = solve_drift_diffusion(dev, bias, mesh, opts);
  EXPECT_FALSE(sol.converged);
  EXPECT_EQ(sol.status.reason, numeric::SolveReason::kBudgetExceeded);
  EXPECT_GE(sol.stats.budget_exhausted, 1u);
  EXPECT_TRUE(all_finite(sol.potential));
  EXPECT_TRUE(std::isfinite(sol.drain_current));
}

}  // namespace
}  // namespace stco::tcad
