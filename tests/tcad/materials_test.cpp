#include "src/tcad/materials.hpp"

#include <gtest/gtest.h>

namespace stco::tcad {
namespace {

TEST(Materials, PresetsHavePhysicalValues) {
  for (auto kind : {SemiconductorKind::kCnt, SemiconductorKind::kIgzo,
                    SemiconductorKind::kLtps, SemiconductorKind::kSilicon}) {
    const auto p = params_for(kind);
    EXPECT_EQ(p.kind, kind);
    EXPECT_GT(p.eps_r, 1.0);
    EXPECT_GT(p.ni, 0.0);
    EXPECT_GT(p.mu0, 0.0);
    EXPECT_GE(p.gamma, 0.0);
    EXPECT_GT(p.tau_srh_n, 0.0);
    EXPECT_GT(p.vth0, 0.0);
  }
}

TEST(Materials, CntIsPTypeOthersNType) {
  EXPECT_EQ(cnt_params().carrier, CarrierType::kPType);
  EXPECT_EQ(igzo_params().carrier, CarrierType::kNType);
  EXPECT_EQ(ltps_params().carrier, CarrierType::kNType);
}

TEST(Materials, LtpsHasHighestMobility) {
  // LTPS is the high-mobility technology of the three.
  EXPECT_GT(ltps_params().mu0, cnt_params().mu0);
  EXPECT_GT(ltps_params().mu0, igzo_params().mu0);
}

TEST(Materials, ThermalVoltageAt300K) {
  EXPECT_NEAR(thermal_voltage(300.0), 0.02585, 1e-4);
  EXPECT_NEAR(thermal_voltage(600.0) / thermal_voltage(300.0), 2.0, 1e-12);
}

TEST(Materials, SrhRateSigns) {
  const auto p = ltps_params();
  // Equilibrium (n p = ni^2): zero net recombination.
  EXPECT_NEAR(srh_rate(p, p.ni, p.ni), 0.0, 1e-6);
  // Excess carriers: recombination (positive).
  EXPECT_GT(srh_rate(p, 100 * p.ni, 100 * p.ni), 0.0);
  // Depletion: generation (negative).
  EXPECT_LT(srh_rate(p, 0.01 * p.ni, 0.01 * p.ni), 0.0);
}

TEST(Materials, ToStringRoundTrips) {
  EXPECT_EQ(to_string(SemiconductorKind::kCnt), "CNT");
  EXPECT_EQ(to_string(SemiconductorKind::kIgzo), "IGZO");
  EXPECT_EQ(to_string(SemiconductorKind::kLtps), "LTPS");
  EXPECT_EQ(to_string(CarrierType::kNType), "N");
}

}  // namespace
}  // namespace stco::tcad
