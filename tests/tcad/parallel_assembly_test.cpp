// Bit-identity of parallel TCAD Newton assembly (the PR-3 determinism
// contract): residual/Jacobian stamping fans out over mesh rows with
// per-row triplet scratch, merged serially in row order, so every float in
// the solution must be identical — not merely close — at any thread count.

#include <gtest/gtest.h>

#include <cstddef>

#include "src/exec/context.hpp"
#include "src/tcad/drift_diffusion.hpp"
#include "src/tcad/poisson.hpp"

namespace stco::tcad {
namespace {

void expect_bitwise_equal(const numeric::Vec& a, const numeric::Vec& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i], b[i]) << what << " node " << i;
}

TEST(ParallelAssembly, PoissonBitIdenticalAcrossThreadCounts) {
  TftDevice dev;
  dev.semi = igzo_params();
  const Bias bias{2.5, 1.0, 0.0};
  const auto mesh = build_mesh(dev, bias, 24, 10, 6);

  const auto serial = solve_poisson(dev, bias, mesh);
  ASSERT_TRUE(serial.converged);

  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const exec::Context ctx(threads);
    const auto par = solve_poisson(dev, bias, mesh, {}, ctx);
    ASSERT_TRUE(par.converged) << threads;
    EXPECT_EQ(par.newton_iterations, serial.newton_iterations) << threads;
    expect_bitwise_equal(par.potential, serial.potential, "potential");
    expect_bitwise_equal(par.electron_density, serial.electron_density, "n");
    expect_bitwise_equal(par.hole_density, serial.hole_density, "p");
    expect_bitwise_equal(par.charge_density, serial.charge_density, "rho");
  }
}

TEST(ParallelAssembly, DriftDiffusionBitIdenticalAcrossThreadCounts) {
  TftDevice dev;
  dev.semi = igzo_params();
  const Bias bias{3.0, 1.0, 0.0};
  const auto mesh = build_mesh(dev, bias, 16, 8, 5);

  DriftDiffusionOptions opts;
  const auto serial = solve_drift_diffusion(dev, bias, mesh, opts);
  ASSERT_TRUE(serial.converged);

  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const exec::Context ctx(threads);
    const auto par = solve_drift_diffusion(dev, bias, mesh, opts, ctx);
    ASSERT_TRUE(par.converged) << threads;
    EXPECT_EQ(par.gummel_iterations, serial.gummel_iterations) << threads;
    expect_bitwise_equal(par.potential, serial.potential, "potential");
    expect_bitwise_equal(par.electron_density, serial.electron_density, "n");
    expect_bitwise_equal(par.hole_density, serial.hole_density, "p");
    ASSERT_EQ(par.drain_current, serial.drain_current) << threads;
    ASSERT_EQ(par.source_current, serial.source_current) << threads;
  }
}

}  // namespace
}  // namespace stco::tcad
