#include "src/tcad/drift_diffusion.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/tcad/transport.hpp"

namespace stco::tcad {
namespace {

TftDevice device() {
  TftDevice dev;
  dev.semi = igzo_params();
  return dev;
}

/// Coarse-mesh options keep each solve ~100 ms in the test suite.
DriftDiffusionSolution solve(const TftDevice& dev, const Bias& b) {
  return solve_drift_diffusion(dev, b, 20, 6, 4);
}

TEST(Bernoulli, ValuesAndSymmetry) {
  EXPECT_NEAR(bernoulli(0.0), 1.0, 1e-12);
  EXPECT_NEAR(bernoulli(1e-6), 1.0 - 5e-7, 1e-9);
  // Identity: B(-x) = B(x) + x.
  for (double x : {0.5, 2.0, 10.0, 50.0})
    EXPECT_NEAR(bernoulli(-x), bernoulli(x) + x, 1e-9 * (1 + x));
  EXPECT_NEAR(bernoulli(40.0), 40.0 * std::exp(-40.0), 1e-18);
}

TEST(DriftDiffusion, ConvergesAndConservesCurrent) {
  const auto dd = solve(device(), Bias{3.0, 1.0, 0.0});
  EXPECT_TRUE(dd.converged);
  // Kirchhoff: source and drain terminal currents balance.
  EXPECT_NEAR(dd.source_current + dd.drain_current, 0.0,
              1e-4 * std::fabs(dd.drain_current) + 1e-15);
}

TEST(DriftDiffusion, EquilibriumCarriesNoCurrent) {
  const auto dd = solve(device(), Bias{0.0, 0.0, 0.0});
  EXPECT_TRUE(dd.converged);
  EXPECT_LT(std::fabs(dd.drain_current), 1e-12);
}

TEST(DriftDiffusion, GateBiasTurnsTheDeviceOn) {
  const auto off = solve(device(), Bias{-1.0, 1.0, 0.0});
  const auto on = solve(device(), Bias{4.0, 1.0, 0.0});
  EXPECT_GT(on.drain_current, 100.0 * std::max(off.drain_current, 1e-15));
}

TEST(DriftDiffusion, AgreesWithSliceTransportAtOnState) {
  // Two independent approximations of the same device should land within a
  // small factor at on-state.
  const auto dev = device();
  const Bias b{4.0, 1.0, 0.0};
  const auto dd = solve_drift_diffusion(dev, b);  // fine default mesh
  const double slice = drain_current(dev, b);
  EXPECT_GT(dd.drain_current / slice, 0.3);
  EXPECT_LT(dd.drain_current / slice, 3.0);
}

TEST(DriftDiffusion, DrainBiasIncreasesCurrent) {
  const auto dev = device();
  const auto lo = solve(dev, Bias{3.0, 0.5, 0.0});
  const auto hi = solve(dev, Bias{3.0, 2.0, 0.0});
  EXPECT_GT(hi.drain_current, lo.drain_current);
}

TEST(DriftDiffusion, CarrierDensitiesPositiveAndContactsPinned) {
  const auto dev = device();
  const Bias b{2.0, 1.0, 0.0};
  const auto mesh = build_mesh(dev, b, 20, 6, 4);
  const auto dd = solve_drift_diffusion(dev, b, mesh);
  DriftDiffusionOptions opts;
  for (std::size_t i = 0; i < mesh.num_nodes(); ++i) {
    if (mesh.node(i).material != mesh::Material::kSemiconductor) continue;
    EXPECT_GT(dd.electron_density[i], 0.0);
    EXPECT_GT(dd.hole_density[i], 0.0);
    if (mesh.node(i).dirichlet) {
      // Ohmic contact: majority density equals the reservoir doping.
      EXPECT_NEAR(dd.electron_density[i] / opts.contact_doping, 1.0, 1e-6);
    }
  }
}

TEST(DriftDiffusion, PTypeMirror) {
  TftDevice dev = device();
  dev.semi = cnt_params();  // p-type
  const auto on = solve(dev, Bias{-4.0, -1.0, 0.0});
  const auto off = solve(dev, Bias{1.0, -1.0, 0.0});
  EXPECT_TRUE(on.converged);
  EXPECT_GT(std::fabs(on.drain_current), 50.0 * std::fabs(off.drain_current));
}

}  // namespace
}  // namespace stco::tcad
