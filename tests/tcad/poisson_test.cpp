#include "src/tcad/poisson.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stco::tcad {
namespace {

TftDevice small_device() {
  TftDevice dev;
  dev.semi = igzo_params();  // n-type, well behaved
  dev.length = 2e-6;
  dev.contact_len = 0.4e-6;
  dev.t_ox = 100e-9;
  dev.t_ch = 40e-9;
  return dev;
}

TEST(Poisson, ConvergesAtEquilibrium) {
  const auto dev = small_device();
  const auto sol = solve_poisson(dev, Bias{0.0, 0.0, 0.0}, 12, 4, 3);
  EXPECT_TRUE(sol.converged);
  EXPECT_LT(sol.newton_iterations, 60u);
}

TEST(Poisson, DirichletValuesPinned) {
  const auto dev = small_device();
  const Bias bias{3.0, 1.0, 0.0};
  const auto mesh = build_mesh(dev, bias, 12, 4, 3);
  const auto sol = solve_poisson(dev, bias, mesh);
  ASSERT_TRUE(sol.converged);
  for (std::size_t i = 0; i < mesh.num_nodes(); ++i)
    if (mesh.node(i).dirichlet) {
      EXPECT_NEAR(sol.potential[i], mesh.node(i).dirichlet_value, 1e-6);
    }
}

TEST(Poisson, PositiveGateAccumulatesElectronsInNType) {
  const auto dev = small_device();
  const Bias off{0.0, 0.1, 0.0}, on{5.0, 0.1, 0.0};
  const auto mesh_on = build_mesh(dev, on, 12, 4, 3);
  const auto sol_off = solve_poisson(dev, off, 12, 4, 3);
  const auto sol_on = solve_poisson(dev, on, mesh_on);
  ASSERT_TRUE(sol_on.converged);
  // Compare electron density at the back-channel node mid-device (row
  // adjacent to the oxide where the gate field accumulates carriers).
  const std::size_t mid = mesh_on.index(6, 3);
  EXPECT_GT(sol_on.electron_density[mid], 100.0 * sol_off.electron_density[mid]);
}

TEST(Poisson, PotentialBoundedByContacts) {
  // With no fixed charge the solution obeys a discrete maximum principle:
  // potential extremes occur on the Dirichlet boundary.
  auto dev = small_device();
  dev.doping = 0.0;
  const Bias bias{2.0, 1.0, 0.0};
  const auto mesh = build_mesh(dev, bias, 12, 4, 3);
  const auto sol = solve_poisson(dev, bias, mesh);
  ASSERT_TRUE(sol.converged);
  double bc_min = 1e9, bc_max = -1e9;
  for (std::size_t i = 0; i < mesh.num_nodes(); ++i)
    if (mesh.node(i).dirichlet) {
      bc_min = std::min(bc_min, mesh.node(i).dirichlet_value);
      bc_max = std::max(bc_max, mesh.node(i).dirichlet_value);
    }
  // Mobile charge can only pull the potential toward the quasi-Fermi level,
  // which lies within [vs, vd]; allow a small kT-scale margin.
  for (double phi : sol.potential) {
    EXPECT_GT(phi, bc_min - 0.5);
    EXPECT_LT(phi, bc_max + 0.5);
  }
}

TEST(Poisson, QuasiFermiRampMonotonicAlongChannel) {
  const auto dev = small_device();
  const Bias bias{2.0, 2.0, 0.0};
  const auto mesh = build_mesh(dev, bias, 12, 4, 3);
  const auto sol = solve_poisson(dev, bias, mesh);
  for (std::size_t ix = 1; ix < mesh.nx(); ++ix)
    EXPECT_GE(sol.quasi_fermi[mesh.index(ix, 0)] + 1e-12,
              sol.quasi_fermi[mesh.index(ix - 1, 0)]);
  EXPECT_DOUBLE_EQ(sol.quasi_fermi[mesh.index(0, 0)], 0.0);
  EXPECT_DOUBLE_EQ(sol.quasi_fermi[mesh.index(mesh.nx() - 1, 0)], 2.0);
}

TEST(Poisson, ChargeDensityConsistentWithCarriers) {
  const auto dev = small_device();
  const Bias bias{4.0, 0.5, 0.0};
  const auto mesh = build_mesh(dev, bias, 12, 4, 3);
  const auto sol = solve_poisson(dev, bias, mesh);
  for (std::size_t i = 0; i < mesh.num_nodes(); ++i) {
    if (mesh.node(i).material != mesh::Material::kSemiconductor) {
      EXPECT_DOUBLE_EQ(sol.charge_density[i], 0.0);
      continue;
    }
    const double expected =
        kQ * (sol.hole_density[i] - sol.electron_density[i] + dev.doping);
    EXPECT_NEAR(sol.charge_density[i], expected, std::fabs(expected) * 1e-12 + 1e-20);
  }
}

TEST(Poisson, PTypeDeviceAccumulatesHolesUnderNegativeGate) {
  TftDevice dev = small_device();
  dev.semi = cnt_params();  // p-type
  const Bias on{-5.0, -0.1, 0.0};
  const auto mesh = build_mesh(dev, on, 12, 4, 3);
  const auto sol = solve_poisson(dev, on, mesh);
  ASSERT_TRUE(sol.converged);
  const std::size_t back = mesh.index(6, 3);
  EXPECT_GT(sol.hole_density[back], sol.electron_density[back] * 1e3);
}

}  // namespace
}  // namespace stco::tcad
