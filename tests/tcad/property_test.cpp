// Parameterized physics sweeps for the TCAD substrate: every technology and
// bias combination must satisfy solver invariants.

#include <gtest/gtest.h>

#include <cmath>

#include "src/tcad/poisson.hpp"
#include "src/tcad/transport.hpp"

namespace stco::tcad {
namespace {

struct TechBias {
  SemiconductorKind kind;
  double vg_frac;  ///< gate bias as a fraction of 5 V (sign applied per type)
};

class TcadSweep : public ::testing::TestWithParam<TechBias> {
 protected:
  TftDevice device() const {
    TftDevice dev;
    dev.semi = params_for(GetParam().kind);
    return dev;
  }
  double sign() const {
    return params_for(GetParam().kind).carrier == CarrierType::kNType ? 1.0 : -1.0;
  }
};

TEST_P(TcadSweep, PoissonConvergesEverywhere) {
  const auto dev = device();
  const double s = sign();
  const Bias b{s * GetParam().vg_frac * 5.0, s * 1.0, 0.0};
  const auto sol = solve_poisson(dev, b, 14, 4, 3);
  EXPECT_TRUE(sol.converged);
  for (double phi : sol.potential) EXPECT_TRUE(std::isfinite(phi));
}

TEST_P(TcadSweep, CarriersObeyMassAction) {
  // n * p = ni^2 * exp terms; with a common quasi-Fermi level per node the
  // product equals ni^2 exactly.
  const auto dev = device();
  const double s = sign();
  const Bias b{s * GetParam().vg_frac * 5.0, s * 0.5, 0.0};
  const auto mesh = build_mesh(dev, b, 12, 4, 3);
  const auto sol = solve_poisson(dev, b, mesh);
  for (std::size_t i = 0; i < mesh.num_nodes(); ++i) {
    if (mesh.node(i).material != mesh::Material::kSemiconductor) continue;
    const double np = sol.electron_density[i] * sol.hole_density[i];
    EXPECT_NEAR(np / (dev.semi.ni * dev.semi.ni), 1.0, 1e-6);
  }
}

TEST_P(TcadSweep, SheetChargeMonotoneInOverdrive) {
  const auto dev = device();
  const double s = sign();
  double prev = -1.0;
  for (double f = 0.1; f <= 1.0; f += 0.15) {
    const double q = sheet_charge(dev, s * f * 5.0, 0.0);
    EXPECT_GT(q, 0.0);
    if (prev >= 0.0) {
      EXPECT_GE(q, prev * (1.0 - 1e-9));
    }
    prev = q;
  }
}

TEST_P(TcadSweep, TransferCurveMonotone) {
  const auto dev = device();
  const double s = sign();
  std::vector<double> vgs;
  for (double f = -0.2; f <= 1.0; f += 0.2) vgs.push_back(s * f * 5.0);
  const auto curve = transfer_curve(dev, s * 1.5, vgs);
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_GE(curve[i].id, curve[i - 1].id * (1.0 - 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    TechSweep, TcadSweep,
    ::testing::Values(TechBias{SemiconductorKind::kCnt, 0.2},
                      TechBias{SemiconductorKind::kCnt, 0.8},
                      TechBias{SemiconductorKind::kIgzo, 0.2},
                      TechBias{SemiconductorKind::kIgzo, 0.8},
                      TechBias{SemiconductorKind::kLtps, 0.2},
                      TechBias{SemiconductorKind::kLtps, 0.8},
                      TechBias{SemiconductorKind::kSilicon, 0.5}),
    [](const ::testing::TestParamInfo<TechBias>& info) {
      return to_string(info.param.kind) +
             std::to_string(static_cast<int>(info.param.vg_frac * 10));
    });

// --- mesh refinement convergence ---------------------------------------------

class MeshRefinement : public ::testing::TestWithParam<std::size_t> {};

double mid_channel_potential(std::size_t nx) {
  TftDevice dev;
  dev.semi = igzo_params();
  const Bias b{3.0, 0.5, 0.0};
  const auto mesh = build_mesh(dev, b, nx, 4, 3);
  const auto sol = solve_poisson(dev, b, mesh);
  EXPECT_TRUE(sol.converged);
  return sol.potential[mesh.index(nx / 2, 3)];
}

TEST_P(MeshRefinement, SurfacePotentialStableUnderRefinement) {
  // Mid-channel back-interface potential must agree within tens of
  // millivolts between the coarse reference grid and finer grids.
  const double reference = mid_channel_potential(10);
  EXPECT_NEAR(mid_channel_potential(GetParam()), reference, 0.12);
}

INSTANTIATE_TEST_SUITE_P(NxSweep, MeshRefinement, ::testing::Values(20, 30, 40));

}  // namespace
}  // namespace stco::tcad
