#include "src/surrogate/encoding.hpp"

#include <gtest/gtest.h>

#include "src/surrogate/dataset.hpp"
#include "src/surrogate/surrogate.hpp"

#include "src/tcad/poisson.hpp"

namespace stco::surrogate {
namespace {

struct Solved {
  tcad::TftDevice dev;
  tcad::Bias bias;
  mesh::DeviceMesh mesh;
  tcad::PoissonSolution sol;
};

Solved solve_small() {
  tcad::TftDevice dev;
  dev.semi = tcad::igzo_params();
  tcad::Bias bias{2.0, 1.0, 0.0};
  auto mesh = tcad::build_mesh(dev, bias, 10, 4, 3);
  auto sol = tcad::solve_poisson(dev, bias, mesh);
  return {dev, bias, std::move(mesh), std::move(sol)};
}

TEST(Encoding, DimensionsMatchConstants) {
  const auto s = solve_small();
  const auto g = encode_device(s.dev, s.bias, s.mesh, s.sol,
                               EncodingTask::kPoissonEmulator);
  EXPECT_EQ(g.num_nodes, s.mesh.num_nodes());
  EXPECT_EQ(g.node_dim, kNodeDim);
  EXPECT_EQ(g.edge_dim, kEdgeDim);
  EXPECT_EQ(g.num_edges(), s.mesh.edges().size());
}

TEST(Encoding, MaterialOneHotIsExclusive) {
  const auto s = solve_small();
  const auto g = encode_device(s.dev, s.bias, s.mesh, s.sol,
                               EncodingTask::kPoissonEmulator);
  for (std::size_t i = 0; i < g.num_nodes; ++i) {
    double sum = 0.0;
    for (std::size_t k = 0; k < kMaterialOneHot; ++k)
      sum += g.node_features[i * kNodeDim + k];
    EXPECT_DOUBLE_EQ(sum, 1.0);
  }
}

TEST(Encoding, RegionOneHotIsExclusive) {
  const auto s = solve_small();
  const auto g = encode_device(s.dev, s.bias, s.mesh, s.sol,
                               EncodingTask::kPoissonEmulator);
  const std::size_t off = kMaterialOneHot + kMaterialParams;
  for (std::size_t i = 0; i < g.num_nodes; ++i) {
    double sum = 0.0;
    for (std::size_t k = 0; k < kRegionOneHot; ++k)
      sum += g.node_features[i * kNodeDim + off + k];
    EXPECT_DOUBLE_EQ(sum, 1.0);
  }
}

TEST(Encoding, PoissonTaskHidesPotentialIvTaskShowsIt) {
  const auto s = solve_small();
  const auto gp = encode_device(s.dev, s.bias, s.mesh, s.sol,
                                EncodingTask::kPoissonEmulator);
  const auto gi = encode_device(s.dev, s.bias, s.mesh, s.sol,
                                EncodingTask::kIvPredictor);
  const std::size_t pot_slot = kNodeDim - 1;
  bool iv_has_potential = false;
  for (std::size_t i = 0; i < gp.num_nodes; ++i) {
    EXPECT_DOUBLE_EQ(gp.node_features[i * kNodeDim + pot_slot], 0.0);
    if (gi.node_features[i * kNodeDim + pot_slot] != 0.0) iv_has_potential = true;
  }
  EXPECT_TRUE(iv_has_potential);
}

TEST(Encoding, PoissonTargetsAreResidualPotential) {
  const auto s = solve_small();
  const EncodingScales scales;
  const auto g = encode_device(s.dev, s.bias, s.mesh, s.sol,
                               EncodingTask::kPoissonEmulator, scales);
  ASSERT_EQ(g.node_targets.size(), g.num_nodes);
  for (std::size_t i = 0; i < g.num_nodes; ++i) {
    const auto& nd = s.mesh.node(i);
    const double baseline = nd.dirichlet ? nd.dirichlet_value : s.sol.quasi_fermi[i];
    EXPECT_NEAR(baseline + g.node_targets[i] * scales.potential_residual,
                s.sol.potential[i], 1e-12);
  }
  // Dirichlet node residuals are exactly zero.
  for (std::size_t i = 0; i < g.num_nodes; ++i)
    if (s.mesh.node(i).dirichlet) {
      EXPECT_NEAR(g.node_targets[i], 0.0, 1e-12);
    }
}

TEST(Encoding, PredictPotentialVoltsReconstructsBaseline) {
  // With an untrained model the residual prediction is small but arbitrary;
  // the reconstruction must still anchor on the encoded baseline.
  const auto s = solve_small();
  const EncodingScales scales;
  const auto g = encode_device(s.dev, s.bias, s.mesh, s.sol,
                               EncodingTask::kPoissonEmulator, scales);
  SurrogateConfig cfg;
  cfg.poisson_hidden = 8;
  TcadSurrogate sur(cfg);
  const auto volts = sur.predict_potential_volts(g, scales);
  const auto residual = sur.predict_potential(g);
  ASSERT_EQ(volts.size(), g.num_nodes);
  for (std::size_t i = 0; i < g.num_nodes; ++i) {
    const auto& nd = s.mesh.node(i);
    const double baseline = nd.dirichlet ? nd.dirichlet_value : s.sol.quasi_fermi[i];
    EXPECT_NEAR(volts[i], baseline + residual[i] * scales.potential_residual, 1e-9);
  }
}

TEST(Encoding, EdgeFeaturesAreRelativePositions) {
  const auto s = solve_small();
  const auto g = encode_device(s.dev, s.bias, s.mesh, s.sol,
                               EncodingTask::kPoissonEmulator);
  const auto& edges = s.mesh.edges();
  for (std::size_t e = 0; e < edges.size(); ++e) {
    EXPECT_NEAR(g.edge_features[e * kEdgeDim + 0], edges[e].dx / s.mesh.lx(), 1e-12);
    EXPECT_NEAR(g.edge_features[e * kEdgeDim + 1], edges[e].dy / s.mesh.ly(), 1e-12);
    EXPECT_GT(g.edge_features[e * kEdgeDim + 2], 0.0);
  }
}

TEST(Encoding, MismatchedSolutionThrows) {
  const auto s = solve_small();
  tcad::PoissonSolution bad = s.sol;
  bad.potential.pop_back();
  EXPECT_THROW(encode_device(s.dev, s.bias, s.mesh, bad,
                             EncodingTask::kPoissonEmulator),
               std::invalid_argument);
}

TEST(Dataset, NormalizeCurrentRoundTrip) {
  for (double id : {1e-12, 1e-9, 1e-6, 1e-3}) {
    EXPECT_NEAR(denormalize_current(normalize_current(id)) / id, 1.0, 1e-2);
  }
  // Monotone in |id|.
  EXPECT_LT(normalize_current(1e-12), normalize_current(1e-6));
}

}  // namespace
}  // namespace stco::surrogate
