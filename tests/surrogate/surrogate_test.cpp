#include "src/surrogate/surrogate.hpp"

#include <gtest/gtest.h>

namespace stco::surrogate {
namespace {

/// Shared tiny population: generating TCAD data is the slow part, so build
/// it once for the whole suite.
const std::vector<DeviceSample>& population() {
  static const std::vector<DeviceSample> pop = [] {
    PopulationOptions opts;
    opts.mesh_nx = 10;
    opts.mesh_nch = 3;
    opts.mesh_nox = 3;
    return generate_population(24, /*seed=*/101, opts);
  }();
  return pop;
}

TEST(Population, SamplesAreWellFormed) {
  const auto& pop = population();
  ASSERT_EQ(pop.size(), 24u);
  for (const auto& s : pop) {
    EXPECT_NO_THROW(s.poisson_graph.check());
    EXPECT_NO_THROW(s.iv_graph.check());
    EXPECT_GT(s.drain_current, 0.0);
    ASSERT_EQ(s.iv_graph.graph_targets.size(), 1u);
    EXPECT_NEAR(s.iv_graph.graph_targets[0], normalize_current(s.drain_current), 1e-12);
    EXPECT_EQ(s.poisson_graph.node_targets.size(), s.poisson_graph.num_nodes);
  }
}

TEST(Population, CoversMultipleTechnologies) {
  const auto& pop = population();
  bool cnt = false, igzo = false, ltps = false;
  for (const auto& s : pop) {
    switch (s.device.semi.kind) {
      case tcad::SemiconductorKind::kCnt: cnt = true; break;
      case tcad::SemiconductorKind::kIgzo: igzo = true; break;
      case tcad::SemiconductorKind::kLtps: ltps = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(cnt);
  EXPECT_TRUE(igzo);
  EXPECT_TRUE(ltps);
}

TEST(Surrogate, TrainingReducesPoissonMse) {
  SurrogateConfig cfg;
  cfg.poisson_hidden = 8;
  cfg.poisson_train.epochs = 8;
  // Shrink the deep model for test runtime.
  TcadSurrogate sur(cfg);
  const auto& pop = population();
  std::span<const DeviceSample> train(pop.data(), 16);
  const double before = sur.poisson_mse(train);
  sur.train_poisson(train);
  const double after = sur.poisson_mse(train);
  EXPECT_LT(after, before);
}

TEST(Surrogate, TrainingReducesIvMse) {
  SurrogateConfig cfg;
  cfg.iv_hidden = 8;
  cfg.iv_train.epochs = 15;
  TcadSurrogate sur(cfg);
  const auto& pop = population();
  std::span<const DeviceSample> train(pop.data(), 16);
  const double before = sur.iv_mse(train);
  sur.train_iv(train);
  const double after = sur.iv_mse(train);
  EXPECT_LT(after, before);
}

TEST(Surrogate, EvaluateFillsAllFields) {
  SurrogateConfig cfg;
  cfg.poisson_hidden = 8;
  cfg.iv_hidden = 8;
  cfg.poisson_train.epochs = 2;
  cfg.iv_train.epochs = 2;
  TcadSurrogate sur(cfg);
  const auto& pop = population();
  std::span<const DeviceSample> a(pop.data(), 8);
  std::span<const DeviceSample> b(pop.data() + 8, 8);
  std::span<const DeviceSample> c(pop.data() + 16, 8);
  sur.train_iv(a);
  const auto row = sur.evaluate_iv(a, b, c);
  EXPECT_GT(row.validation_mse, 0.0);
  EXPECT_GT(row.testing_mse, 0.0);
  EXPECT_GT(row.unseen_mse, 0.0);
  EXPECT_LE(row.unseen_r2, 1.0);
}

TEST(Surrogate, PredictCurrentReturnsPositiveAmps) {
  SurrogateConfig cfg;
  cfg.iv_hidden = 8;
  TcadSurrogate sur(cfg);
  const auto& pop = population();
  const double id = sur.predict_current(pop[0].iv_graph);
  EXPECT_GT(id, 0.0);
  EXPECT_TRUE(std::isfinite(id));
}


TEST(Surrogate, SaveLoadWeightsRoundTrip) {
  SurrogateConfig cfg;
  cfg.poisson_hidden = 8;
  cfg.iv_hidden = 8;
  TcadSurrogate a(cfg);
  const auto& pop = population();
  const double ref = a.predict_current(pop[0].iv_graph);
  a.save_weights("/tmp/stco_surrogate.bin");
  cfg.init_seed = 999;  // different random init
  TcadSurrogate b(cfg);
  EXPECT_NE(b.predict_current(pop[0].iv_graph), ref);
  b.load_weights("/tmp/stco_surrogate.bin");
  EXPECT_DOUBLE_EQ(b.predict_current(pop[0].iv_graph), ref);
}

}  // namespace
}  // namespace stco::surrogate
