// STCA container + payload codec tests: CRC32C vector, round trips, and
// every envelope-validation failure mode mapped to its LoadStatus.

#include "src/persist/format.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "src/obs/obs.hpp"
#include "src/persist/crc32c.hpp"

namespace stco::persist {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kTestKind = fourcc('T', 'E', 'S', 'T');

/// Fresh per-test scratch directory under the build cwd.
class FormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path("persist_format_scratch") /
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  fs::path dir_;
  Storage storage_{RetryPolicy{1, 0, false}};
};

TEST(Crc32c, MatchesRfc3720Vector) {
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  std::uint32_t crc = 0;
  crc = crc32c_update(crc, data.data(), 10);
  crc = crc32c_update(crc, data.data() + 10, data.size() - 10);
  EXPECT_EQ(crc, crc32c(data));
}

TEST(Payload, RoundTripsEveryFieldType) {
  PayloadWriter w;
  w.put_u8(7);
  w.put_u32(0xDEADBEEFu);
  w.put_u64(1ull << 40);
  w.put_f64(-2.5e-19);
  w.put_str("hello artifact");
  w.put_f64s({1.0, -0.5, 3.25});
  w.put_raw("rawtail");

  PayloadReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 7u);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 1ull << 40);
  EXPECT_EQ(r.get_f64(), -2.5e-19);
  EXPECT_EQ(r.get_str(), "hello artifact");
  EXPECT_EQ(r.get_f64s(), (std::vector<double>{1.0, -0.5, 3.25}));
  EXPECT_EQ(r.get_raw(7), "rawtail");
  EXPECT_TRUE(r.done());
}

TEST(Payload, OverrunThrowsPayloadError) {
  PayloadWriter w;
  w.put_u32(1);
  PayloadReader r(w.bytes());
  EXPECT_THROW(r.get_u64(), PayloadError);
}

TEST(Payload, CorruptLengthPrefixDoesNotAllocate) {
  // A length field claiming ~2^61 doubles must throw before allocating.
  PayloadWriter w;
  w.put_u64(0x2000000000000000ull);
  PayloadReader strs(w.bytes());
  EXPECT_THROW(strs.get_str(), PayloadError);
  PayloadReader f64s(w.bytes());
  EXPECT_THROW(f64s.get_f64s(), PayloadError);
}

TEST_F(FormatTest, ArtifactRoundTrip) {
  PayloadWriter w;
  w.put_str("payload");
  w.put_f64(42.0);
  write_artifact(storage_, path("a.stca"), kTestKind, 3, w.bytes());

  const ArtifactData got = read_artifact(storage_, path("a.stca"), kTestKind);
  EXPECT_TRUE(ok(got.status));
  EXPECT_EQ(got.schema, 3u);
  PayloadReader r(got.payload);
  EXPECT_EQ(r.get_str(), "payload");
  EXPECT_EQ(r.get_f64(), 42.0);
}

TEST_F(FormatTest, MissingFileIsNotFoundNotCorrupt) {
  const ArtifactData got = read_artifact(storage_, path("nope.stca"), kTestKind);
  EXPECT_EQ(got.status, LoadStatus::kNotFound);
  EXPECT_FALSE(corrupt(got.status));
}

TEST_F(FormatTest, TruncationIsDetected) {
  PayloadWriter w;
  w.put_f64s({1, 2, 3, 4});
  write_artifact(storage_, path("t.stca"), kTestKind, 1, w.bytes());

  std::string bytes;
  ASSERT_EQ(storage_.read(path("t.stca"), bytes), LoadStatus::kOk);
  // Cut inside the payload: header parses, the declared size does not fit.
  storage_.write_atomic(path("t.stca"), std::string_view(bytes).substr(0, bytes.size() - 9));
  EXPECT_EQ(read_artifact(storage_, path("t.stca"), kTestKind).status,
            LoadStatus::kTruncated);
  // Cut inside the header: too short for any STCA file.
  storage_.write_atomic(path("t.stca"), std::string_view(bytes).substr(0, 11));
  EXPECT_EQ(read_artifact(storage_, path("t.stca"), kTestKind).status,
            LoadStatus::kTruncated);
}

TEST_F(FormatTest, ForeignFileIsBadMagic) {
  storage_.write_atomic(path("m.stca"), std::string(64, 'x'));
  EXPECT_EQ(read_artifact(storage_, path("m.stca"), kTestKind).status,
            LoadStatus::kBadMagic);
}

TEST_F(FormatTest, FutureContainerVersionIsBadVersion) {
  write_artifact(storage_, path("v.stca"), kTestKind, 1, "p");
  std::string bytes;
  ASSERT_EQ(storage_.read(path("v.stca"), bytes), LoadStatus::kOk);
  bytes[4] = static_cast<char>(kContainerVersion + 1);  // u32 LE at offset 4
  storage_.write_atomic(path("v.stca"), bytes);
  EXPECT_EQ(read_artifact(storage_, path("v.stca"), kTestKind).status,
            LoadStatus::kBadVersion);
}

TEST_F(FormatTest, KindConfusionIsWrongKind) {
  write_artifact(storage_, path("k.stca"), kTestKind, 1, "p");
  const ArtifactData got =
      read_artifact(storage_, path("k.stca"), fourcc('O', 'T', 'H', 'R'));
  EXPECT_EQ(got.status, LoadStatus::kWrongKind);
}

TEST_F(FormatTest, SingleBitFlipIsBadChecksum) {
  PayloadWriter w;
  w.put_str("bits matter");
  write_artifact(storage_, path("c.stca"), kTestKind, 1, w.bytes());
  std::string bytes;
  ASSERT_EQ(storage_.read(path("c.stca"), bytes), LoadStatus::kOk);
  bytes[kHeaderSize + 3] ^= 0x10;  // one payload bit
  storage_.write_atomic(path("c.stca"), bytes);
  EXPECT_EQ(read_artifact(storage_, path("c.stca"), kTestKind).status,
            LoadStatus::kBadChecksum);
}

TEST_F(FormatTest, CorruptionIsCountedGracefully) {
  storage_.write_atomic(path("g.stca"), "definitely not an artifact, long enough");
  const std::uint64_t before = obs::snapshot().counter_or("persist.corrupt_artifacts");
  const ArtifactData got = read_artifact(storage_, path("g.stca"), kTestKind);
  EXPECT_TRUE(corrupt(got.status));
  if constexpr (obs::kEnabled) {
    EXPECT_GT(obs::snapshot().counter_or("persist.corrupt_artifacts"), before);
  }
}

TEST_F(FormatTest, AtomicWriteReplacesAndCleansUpTemp) {
  const std::string p = path("f.txt");
  storage_.write_atomic(p, "first");
  storage_.write_atomic(p, "second");
  std::string got;
  ASSERT_EQ(storage_.read(p, got), LoadStatus::kOk);
  EXPECT_EQ(got, "second");
  EXPECT_FALSE(fs::exists(tmp_path_for(p)));
}

TEST_F(FormatTest, LoadStatusStringsAreDistinct) {
  EXPECT_STRNE(to_string(LoadStatus::kOk), to_string(LoadStatus::kBadChecksum));
  EXPECT_STRNE(to_string(LoadStatus::kTruncated), to_string(LoadStatus::kBadMagic));
}

}  // namespace
}  // namespace stco::persist
