// Checkpoint / resume tests: manifest round trip, configuration
// fingerprints, and the headline contract — a dataset build killed
// mid-generation and resumed produces exactly what an uninterrupted run
// produces, and a corrupt shard is detected, counted, and rebuilt.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/charlib/checkpoint.hpp"
#include "src/gnn/serialize.hpp"
#include "src/obs/obs.hpp"
#include "src/persist/fault.hpp"
#include "src/persist/manifest.hpp"
#include "src/surrogate/checkpoint.hpp"

namespace stco {
namespace {

namespace fs = std::filesystem;

persist::RetryPolicy no_sleep() { return persist::RetryPolicy{1, 0, false}; }

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path("persist_resume_scratch") /
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string sub(const char* name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

void expect_same_graph(const gnn::Graph& a, const gnn::Graph& b) {
  EXPECT_EQ(a.num_nodes, b.num_nodes);
  EXPECT_EQ(a.node_dim, b.node_dim);
  EXPECT_EQ(a.edge_dim, b.edge_dim);
  EXPECT_EQ(a.edge_src, b.edge_src);
  EXPECT_EQ(a.edge_dst, b.edge_dst);
  EXPECT_EQ(a.node_features, b.node_features);
  EXPECT_EQ(a.edge_features, b.edge_features);
  EXPECT_EQ(a.node_targets, b.node_targets);
  EXPECT_EQ(a.graph_targets, b.graph_targets);
}

// --- manifest ------------------------------------------------------------

TEST_F(ResumeTest, ManifestRoundTrip) {
  persist::Storage storage(no_sleep());
  persist::Manifest m;
  m.dataset_kind = "charlib";
  m.fingerprint = 0xABCDEF0123456789ull;
  m.shard_size = 4;
  m.total_items = 10;
  m.num_shards = 3;
  m.completed = {{0, 4, "shard-0.stca"}, {2, 2, "shard-2.stca"}};
  persist::save_manifest(storage, sub("m.stca"), m);

  persist::Manifest got;
  ASSERT_TRUE(persist::ok(persist::load_manifest(storage, sub("m.stca"), got)));
  EXPECT_EQ(got.dataset_kind, m.dataset_kind);
  EXPECT_EQ(got.fingerprint, m.fingerprint);
  EXPECT_EQ(got.shard_size, m.shard_size);
  EXPECT_EQ(got.total_items, m.total_items);
  EXPECT_EQ(got.num_shards, m.num_shards);
  ASSERT_EQ(got.completed.size(), 2u);
  ASSERT_NE(got.find(0), nullptr);
  EXPECT_EQ(got.find(0)->items, 4u);
  EXPECT_EQ(got.find(0)->file, "shard-0.stca");
  EXPECT_EQ(got.find(1), nullptr);
  ASSERT_NE(got.find(2), nullptr);
  EXPECT_EQ(got.find(2)->items, 2u);
}

TEST_F(ResumeTest, MissingManifestIsNotFound) {
  persist::Storage storage(no_sleep());
  persist::Manifest got;
  EXPECT_EQ(persist::load_manifest(storage, sub("absent.stca"), got),
            persist::LoadStatus::kNotFound);
}

TEST(FingerprintApi, OrderAndContentSensitive) {
  persist::Fingerprint a, b;
  a.add_str("x").add_u64(1).add_f64(2.5);
  b.add_str("x").add_u64(1).add_f64(2.5);
  EXPECT_EQ(a.value(), b.value());
  persist::Fingerprint c;
  c.add_u64(1).add_str("x").add_f64(2.5);  // same fields, different order
  EXPECT_NE(a.value(), c.value());
}

// --- graph codec ---------------------------------------------------------

TEST(GraphCodec, RoundTripsAndValidates) {
  gnn::Graph g;
  g.num_nodes = 3;
  g.node_dim = 2;
  g.edge_dim = 1;
  g.edge_src = {0, 1, 2};
  g.edge_dst = {1, 2, 0};
  g.node_features = {1, 2, 3, 4, 5, 6};
  g.edge_features = {0.5, -0.5, 0.25};
  g.node_targets = {7, 8, 9};
  g.graph_targets = {10};

  persist::PayloadWriter w;
  gnn::put_graph(w, g);
  persist::PayloadReader r(w.bytes());
  const gnn::Graph got = gnn::get_graph(r);
  EXPECT_TRUE(r.done());
  expect_same_graph(got, g);

  // An edge index past num_nodes must throw PayloadError, not produce an
  // invalid graph the trainer would index out of bounds with.
  gnn::Graph bad = g;
  bad.edge_src[0] = 99;
  persist::PayloadWriter wb;
  gnn::put_graph(wb, bad);
  persist::PayloadReader rb(wb.bytes());
  EXPECT_THROW(gnn::get_graph(rb), persist::PayloadError);
}

// --- charlib resume ------------------------------------------------------

charlib::DatasetOptions tiny_charlib_opts() {
  charlib::DatasetOptions opts;
  opts.cell_names = {"INV"};
  opts.input_slews = {15e-9};
  opts.output_loads = {30e-15};
  return opts;
}

TEST_F(ResumeTest, CharlibFingerprintTracksConfiguration) {
  const charlib::CornerRanges ranges;
  const auto corners = charlib::corner_grid(ranges, 2);
  const auto opts = tiny_charlib_opts();
  const std::uint64_t base = charlib::charlib_dataset_fingerprint(corners, opts, 3);
  EXPECT_EQ(charlib::charlib_dataset_fingerprint(corners, opts, 3), base);
  EXPECT_NE(charlib::charlib_dataset_fingerprint(corners, opts, 4), base);
  auto opts2 = opts;
  opts2.input_slews = {20e-9};
  EXPECT_NE(charlib::charlib_dataset_fingerprint(corners, opts2, 3), base);
  EXPECT_NE(charlib::charlib_dataset_fingerprint(
                charlib::corner_grid(ranges, 3), opts, 3),
            base);
}

TEST_F(ResumeTest, CharlibKillAndResumeIsBitIdentical) {
  const charlib::CornerRanges ranges;
  const auto corners = charlib::corner_grid(ranges, 2);  // 8 corners
  const auto opts = tiny_charlib_opts();

  // Ground truth: the plain, non-checkpointed builder.
  const auto plain = charlib::build_charlib_dataset(corners, opts);

  // Run 1: killed while writing shard 1 (write order per shard is
  // [shard artifact, manifest], so op 3 is the second shard's artifact).
  persist::FaultInjector kill(/*seed=*/5, persist::FaultKind::kCrashBeforeRename,
                              /*at_op=*/3);
  persist::Storage faulty(no_sleep(), &kill);
  charlib::CheckpointOptions ckpt{sub("ckpt"), /*shard_size=*/3, &faulty};
  EXPECT_THROW(charlib::build_charlib_dataset_resumable(corners, opts, ckpt),
               persist::CrashError);

  // Run 2: resume with a healthy storage. Shard 0 must load from disk, the
  // rest regenerate, and the result is bit-identical to the plain build.
  const std::uint64_t loaded_before = obs::snapshot().counter_or("persist.shards_loaded");
  persist::Storage healthy(no_sleep());
  charlib::CheckpointOptions resume{sub("ckpt"), /*shard_size=*/3, &healthy};
  charlib::DatasetStats stats;
  auto opts2 = opts;
  opts2.stats = &stats;
  const auto resumed =
      charlib::build_charlib_dataset_resumable(corners, opts2, resume);

  ASSERT_EQ(resumed.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(resumed[i].metric, plain[i].metric);
    EXPECT_EQ(resumed[i].target, plain[i].target);
    EXPECT_EQ(resumed[i].cell, plain[i].cell);
    expect_same_graph(resumed[i].graph, plain[i].graph);
  }
  EXPECT_GT(stats.characterizations, 0u);
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(obs::snapshot().counter_or("persist.shards_loaded"), loaded_before + 1);
  }

  // Run 3: everything checkpointed — a pure load, still identical.
  const auto warm = charlib::build_charlib_dataset_resumable(corners, opts, resume);
  ASSERT_EQ(warm.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i)
    EXPECT_EQ(warm[i].target, plain[i].target);
}

TEST_F(ResumeTest, CharlibCorruptShardIsRebuiltNotTrusted) {
  const charlib::CornerRanges ranges;
  const auto corners = charlib::corner_grid(ranges, 1);  // 1 corner
  const auto opts = tiny_charlib_opts();
  persist::Storage storage(no_sleep());
  charlib::CheckpointOptions ckpt{sub("ckpt"), /*shard_size=*/1, &storage};

  const auto first = charlib::build_charlib_dataset_resumable(corners, opts, ckpt);
  ASSERT_FALSE(first.empty());

  // Flip one byte of the recorded shard on disk (tests may do raw I/O).
  const std::string shard_path = sub("ckpt") + "/charlib-shard-0.stca";
  std::string bytes;
  ASSERT_EQ(storage.read(shard_path, bytes), persist::LoadStatus::kOk);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  std::ofstream(shard_path, std::ios::binary).write(bytes.data(),
                                                    static_cast<std::streamsize>(bytes.size()));

  const std::uint64_t corrupt_before =
      obs::snapshot().counter_or("persist.corrupt_artifacts");
  const auto rebuilt = charlib::build_charlib_dataset_resumable(corners, opts, ckpt);
  ASSERT_EQ(rebuilt.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(rebuilt[i].target, first[i].target);
  if constexpr (obs::kEnabled) {
    EXPECT_GT(obs::snapshot().counter_or("persist.corrupt_artifacts"), corrupt_before);
  }
  // The rebuilt shard validates again.
  const auto reloaded = charlib::load_charlib_shard(storage, shard_path);
  EXPECT_TRUE(persist::ok(reloaded.status));
}

TEST_F(ResumeTest, CharlibConfigChangeInvalidatesCheckpoint) {
  const charlib::CornerRanges ranges;
  const auto corners = charlib::corner_grid(ranges, 1);
  persist::Storage storage(no_sleep());
  charlib::CheckpointOptions ckpt{sub("ckpt"), /*shard_size=*/1, &storage};

  const auto opts = tiny_charlib_opts();
  (void)charlib::build_charlib_dataset_resumable(corners, opts, ckpt);

  // Different slew axis: old shards must not be resumed into this build.
  auto opts2 = tiny_charlib_opts();
  opts2.input_slews = {25e-9};
  const auto fresh = charlib::build_charlib_dataset_resumable(corners, opts2, ckpt);
  const auto plain = charlib::build_charlib_dataset(corners, opts2);
  ASSERT_EQ(fresh.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i)
    EXPECT_EQ(fresh[i].target, plain[i].target);
}

TEST_F(ResumeTest, CharlibRejectsDegenerateOptions) {
  const auto corners = charlib::corner_grid(charlib::CornerRanges{}, 1);
  const auto opts = tiny_charlib_opts();
  EXPECT_THROW(charlib::build_charlib_dataset_resumable(
                   corners, opts, charlib::CheckpointOptions{"", 4, nullptr}),
               std::invalid_argument);
  EXPECT_THROW(charlib::build_charlib_dataset_resumable(
                   corners, opts, charlib::CheckpointOptions{"d", 0, nullptr}),
               std::invalid_argument);
}

// --- surrogate resume ----------------------------------------------------

surrogate::PopulationOptions tiny_population_opts() {
  surrogate::PopulationOptions opts;
  opts.mesh_nx = 10;
  opts.mesh_nch = 3;
  opts.mesh_nox = 3;
  return opts;
}

TEST_F(ResumeTest, SurrogateKillAndResumeMatchesUninterruptedRun) {
  const std::size_t count = 6;
  const std::uint64_t seed = 77;
  const auto opts = tiny_population_opts();

  // Uninterrupted sharded run (the determinism reference for resume).
  persist::Storage storage_a(no_sleep());
  surrogate::CheckpointOptions ckpt_a{sub("a"), /*shard_size=*/2, &storage_a};
  const auto uninterrupted =
      surrogate::generate_population_resumable(count, seed, opts, ckpt_a);

  // Killed while writing shard 1, then resumed.
  persist::FaultInjector kill(/*seed=*/9, persist::FaultKind::kCrashBeforeRename,
                              /*at_op=*/3);
  persist::Storage faulty(no_sleep(), &kill);
  surrogate::CheckpointOptions ckpt_b{sub("b"), /*shard_size=*/2, &faulty};
  EXPECT_THROW(surrogate::generate_population_resumable(count, seed, opts, ckpt_b),
               persist::CrashError);

  persist::Storage healthy(no_sleep());
  surrogate::CheckpointOptions resume{sub("b"), /*shard_size=*/2, &healthy};
  surrogate::PopulationStats stats;
  auto opts2 = opts;
  opts2.stats = &stats;
  const auto resumed =
      surrogate::generate_population_resumable(count, seed, opts2, resume);

  ASSERT_EQ(resumed.size(), uninterrupted.size());
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    EXPECT_EQ(resumed[i].drain_current, uninterrupted[i].drain_current);
    EXPECT_EQ(resumed[i].bias.vg, uninterrupted[i].bias.vg);
    EXPECT_EQ(resumed[i].bias.vd, uninterrupted[i].bias.vd);
    EXPECT_EQ(resumed[i].device.length, uninterrupted[i].device.length);
    EXPECT_EQ(resumed[i].device.doping, uninterrupted[i].device.doping);
    expect_same_graph(resumed[i].poisson_graph, uninterrupted[i].poisson_graph);
    expect_same_graph(resumed[i].iv_graph, uninterrupted[i].iv_graph);
  }
  EXPECT_GT(stats.attempts, 0u);
}

TEST_F(ResumeTest, SurrogateShardCodecRoundTrips) {
  const auto opts = tiny_population_opts();
  const auto pop = surrogate::generate_population(2, /*seed=*/5, opts);
  ASSERT_EQ(pop.size(), 2u);

  persist::Storage storage(no_sleep());
  surrogate::PopulationStats stats;
  stats.attempts = 3;
  stats.dropped = 1;
  stats.solver.attempts = 12;
  surrogate::save_surrogate_shard(storage, sub("s.stca"), pop, stats);

  const auto loaded = surrogate::load_surrogate_shard(storage, sub("s.stca"));
  ASSERT_TRUE(persist::ok(loaded.status));
  ASSERT_EQ(loaded.samples.size(), 2u);
  EXPECT_EQ(loaded.stats.attempts, 3u);
  EXPECT_EQ(loaded.stats.dropped, 1u);
  EXPECT_EQ(loaded.stats.solver.attempts, 12u);
  for (std::size_t i = 0; i < pop.size(); ++i) {
    EXPECT_EQ(loaded.samples[i].drain_current, pop[i].drain_current);
    EXPECT_EQ(loaded.samples[i].device.semi.kind, pop[i].device.semi.kind);
    EXPECT_EQ(loaded.samples[i].device.t_ox, pop[i].device.t_ox);
    expect_same_graph(loaded.samples[i].poisson_graph, pop[i].poisson_graph);
    expect_same_graph(loaded.samples[i].iv_graph, pop[i].iv_graph);
  }
}

}  // namespace
}  // namespace stco
