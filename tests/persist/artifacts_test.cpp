// Typed artifact tests: the weights artifact (round trip, model-tag
// confusion, corrupt degradation, all-or-nothing restore) and the
// RobustnessStats payload codec.

#include "src/persist/artifacts.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace stco::persist {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kTagA = fourcc('T', 'A', 'G', 'A');
constexpr std::uint32_t kTagB = fourcc('T', 'A', 'G', 'B');

class ArtifactsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path("persist_artifacts_scratch") /
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  static std::vector<tensor::Tensor> sample_params() {
    return {tensor::Tensor::from_data({1.5, -2.0, 0.25, 1e-9}, 2, 2),
            tensor::Tensor::from_data({3.0, 4.0, 5.0}, 3, 1)};
  }

  fs::path dir_;
  Storage storage_{RetryPolicy{1, 0, false}};
};

TEST_F(ArtifactsTest, WeightsRoundTrip) {
  const auto saved = sample_params();
  write_weights(storage_, path("w.stca"), kTagA, saved);

  auto loaded = sample_params();
  for (auto& t : loaded)
    for (auto& v : t.value()) v = 0.0;
  ASSERT_TRUE(ok(read_weights(storage_, path("w.stca"), kTagA, loaded)));
  for (std::size_t i = 0; i < saved.size(); ++i)
    EXPECT_EQ(loaded[i].value(), saved[i].value());
}

TEST_F(ArtifactsTest, MissingWeightsDegradeToNotFound) {
  auto params = sample_params();
  EXPECT_EQ(read_weights(storage_, path("absent.stca"), kTagA, params),
            LoadStatus::kNotFound);
}

TEST_F(ArtifactsTest, ModelTagConfusionIsWrongKind) {
  write_weights(storage_, path("w.stca"), kTagA, sample_params());
  auto params = sample_params();
  EXPECT_EQ(read_weights(storage_, path("w.stca"), kTagB, params),
            LoadStatus::kWrongKind);
}

TEST_F(ArtifactsTest, ShapeMismatchIsBadPayloadAndLeavesParamsUntouched) {
  write_weights(storage_, path("w.stca"), kTagA, sample_params());
  // Different topology: the tensor codec must reject, and the target
  // parameters must keep their pre-load values (all-or-nothing).
  std::vector<tensor::Tensor> other = {tensor::Tensor::full(4, 4, 7.0)};
  const LoadStatus status = read_weights(storage_, path("w.stca"), kTagA, other);
  EXPECT_EQ(status, LoadStatus::kBadPayload);
  for (const double v : other[0].value()) EXPECT_EQ(v, 7.0);
}

TEST_F(ArtifactsTest, TruncatedWeightsDegradeNotThrow) {
  write_weights(storage_, path("w.stca"), kTagA, sample_params());
  std::string bytes;
  ASSERT_EQ(storage_.read(path("w.stca"), bytes), LoadStatus::kOk);
  storage_.write_atomic(path("w.stca"),
                        std::string_view(bytes).substr(0, bytes.size() / 2));
  auto params = sample_params();
  const LoadStatus status = read_weights(storage_, path("w.stca"), kTagA, params);
  EXPECT_FALSE(ok(status));
  EXPECT_TRUE(corrupt(status));
}

TEST(RobustnessCodec, RoundTripsEveryField) {
  numeric::RobustnessStats s;
  s.attempts = 11;
  s.direct_success = 7;
  s.gmin_retries = 1;
  s.source_retries = 2;
  s.continuation_retries = 3;
  s.damping_retries = 4;
  s.recovered = 5;
  s.failures = 6;
  s.budget_exhausted = 8;
  s.fallbacks = 9;

  PayloadWriter w;
  put_robustness(w, s);
  PayloadReader r(w.bytes());
  const numeric::RobustnessStats got = get_robustness(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(got.attempts, s.attempts);
  EXPECT_EQ(got.direct_success, s.direct_success);
  EXPECT_EQ(got.gmin_retries, s.gmin_retries);
  EXPECT_EQ(got.source_retries, s.source_retries);
  EXPECT_EQ(got.continuation_retries, s.continuation_retries);
  EXPECT_EQ(got.damping_retries, s.damping_retries);
  EXPECT_EQ(got.recovered, s.recovered);
  EXPECT_EQ(got.failures, s.failures);
  EXPECT_EQ(got.budget_exhausted, s.budget_exhausted);
  EXPECT_EQ(got.fallbacks, s.fallbacks);
}

}  // namespace
}  // namespace stco::persist
