// Fault-injection tests for the persist layer: every FaultKind exercised
// through a Storage wired to a FaultInjector, proving the crash-safety
// contract — transient errors retry and succeed, corruption is caught by
// the checksum, and a simulated kill never damages the destination file.

#include "src/persist/fault.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>

#include "src/obs/obs.hpp"
#include "src/persist/format.hpp"
#include "src/persist/storage.hpp"

namespace stco::persist {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kTestKind = fourcc('T', 'E', 'S', 'T');

/// No-sleep retry policy so injected transient windows clear instantly.
RetryPolicy fast_retry(std::size_t attempts = 4) {
  return RetryPolicy{attempts, 0, false};
}

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path("persist_fault_scratch") /
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

TEST_F(FaultTest, TransientErrorIsRetriedToSuccess) {
  FaultInjector inject(/*seed=*/1, FaultKind::kTransientError, /*at_op=*/1,
                       /*times=*/2);
  Storage storage(fast_retry(), &inject);
  const std::uint64_t retries_before = obs::snapshot().counter_or("persist.retries");

  storage.write_atomic(path("w.txt"), "survives two failed attempts");

  EXPECT_EQ(inject.injected(), 2u);
  EXPECT_EQ(inject.ops(), 3u);  // two failures + the success
  std::string got;
  ASSERT_EQ(storage.read(path("w.txt"), got), LoadStatus::kOk);
  EXPECT_EQ(got, "survives two failed attempts");
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(obs::snapshot().counter_or("persist.retries"), retries_before + 2);
  }
}

TEST_F(FaultTest, ExhaustedRetriesThrowRuntimeError) {
  FaultInjector inject(/*seed=*/1, FaultKind::kTransientError, /*at_op=*/1,
                       /*times=*/10);
  Storage storage(fast_retry(/*attempts=*/3), &inject);
  EXPECT_THROW(storage.write_atomic(path("w.txt"), "never lands"), std::runtime_error);
  EXPECT_EQ(inject.injected(), 3u);
  EXPECT_FALSE(storage.exists(path("w.txt")));
}

TEST_F(FaultTest, BitFlipIsCaughtByChecksumOnRead) {
  FaultInjector inject(/*seed=*/7, FaultKind::kBitFlip);
  Storage faulty(fast_retry(), &inject);
  Storage clean(fast_retry());

  PayloadWriter w;
  w.put_str("precious data");
  write_artifact(faulty, path("a.stca"), kTestKind, 1, w.bytes());
  EXPECT_EQ(inject.injected(), 1u);

  EXPECT_EQ(read_artifact(clean, path("a.stca"), kTestKind).status,
            LoadStatus::kBadChecksum);
}

TEST_F(FaultTest, BitFlipIsDeterministicPerSeed) {
  auto flipped_bytes = [&](std::uint64_t seed, const char* name) {
    FaultInjector inject(seed, FaultKind::kBitFlip);
    Storage storage(fast_retry(), &inject);
    storage.write_atomic(path(name), std::string(256, 'z'));
    std::string got;
    EXPECT_EQ(storage.read(path(name), got), LoadStatus::kOk);
    return got;
  };
  EXPECT_EQ(flipped_bytes(3, "a"), flipped_bytes(3, "b"));
  EXPECT_NE(flipped_bytes(3, "c"), flipped_bytes(4, "d"));
}

TEST_F(FaultTest, ShortWriteCrashLeavesDestinationIntact) {
  Storage clean(fast_retry());
  PayloadWriter w;
  w.put_str("the good version");
  write_artifact(clean, path("a.stca"), kTestKind, 1, w.bytes());

  FaultInjector inject(/*seed=*/11, FaultKind::kShortWriteCrash);
  Storage faulty(fast_retry(), &inject);
  PayloadWriter w2;
  w2.put_str("the torn version");
  EXPECT_THROW(write_artifact(faulty, path("a.stca"), kTestKind, 1, w2.bytes()),
               CrashError);

  // The destination still validates and holds the old payload; the torn
  // bytes only ever existed in the temp file.
  const ArtifactData got = read_artifact(clean, path("a.stca"), kTestKind);
  ASSERT_TRUE(ok(got.status));
  PayloadReader r(got.payload);
  EXPECT_EQ(r.get_str(), "the good version");
  EXPECT_TRUE(fs::exists(tmp_path_for(path("a.stca"))));
}

TEST_F(FaultTest, CrashBeforeRenameLeavesDestinationAbsent) {
  FaultInjector inject(/*seed=*/13, FaultKind::kCrashBeforeRename);
  Storage faulty(fast_retry(), &inject);
  EXPECT_THROW(faulty.write_atomic(path("n.txt"), "new file"), CrashError);
  // Kill landed between durability and commit: no destination, full temp.
  EXPECT_FALSE(fs::exists(path("n.txt")));
  std::string tmp;
  Storage clean(fast_retry());
  ASSERT_EQ(clean.read(tmp_path_for(path("n.txt")), tmp), LoadStatus::kOk);
  EXPECT_EQ(tmp, "new file");
}

TEST_F(FaultTest, CrashIsNeverRetried) {
  FaultInjector inject(/*seed=*/17, FaultKind::kCrashBeforeRename, /*at_op=*/1,
                       /*times=*/1);
  Storage storage(fast_retry(/*attempts=*/10), &inject);
  EXPECT_THROW(storage.write_atomic(path("n.txt"), "x"), CrashError);
  EXPECT_EQ(inject.ops(), 1u);  // one attempt, no retry loop
}

TEST_F(FaultTest, InjectionWindowTargetsTheNthWrite) {
  FaultInjector inject(/*seed=*/19, FaultKind::kCrashBeforeRename, /*at_op=*/3);
  Storage storage(fast_retry(), &inject);
  storage.write_atomic(path("1.txt"), "one");
  storage.write_atomic(path("2.txt"), "two");
  EXPECT_THROW(storage.write_atomic(path("3.txt"), "three"), CrashError);
  EXPECT_TRUE(storage.exists(path("1.txt")));
  EXPECT_TRUE(storage.exists(path("2.txt")));
  EXPECT_FALSE(storage.exists(path("3.txt")));
}

TEST_F(FaultTest, InjectedFaultsAreCounted) {
  const std::uint64_t before = obs::snapshot().counter_or("persist.faults_injected");
  FaultInjector inject(/*seed=*/23, FaultKind::kBitFlip);
  Storage storage(fast_retry(), &inject);
  storage.write_atomic(path("b.bin"), "some payload bytes");
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(obs::snapshot().counter_or("persist.faults_injected"), before + 1);
  }
}

}  // namespace
}  // namespace stco::persist
