// AppendWriter tests: one-write-per-line framing, reopen-and-append
// across writer lifetimes (the telemetry resume path), embedded-newline
// rejection, and the never-throws dead-state contract on I/O failure.

#include "src/persist/append_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace stco::persist {
namespace {

namespace fs = std::filesystem;

class AppendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path("persist_append_scratch") /
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  static std::vector<std::string> lines_of(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::vector<std::string> out;
    std::string line;
    while (std::getline(in, line)) out.push_back(line);
    return out;
  }

  fs::path dir_;
};

TEST_F(AppendTest, AppendsLinesWithNewlineFraming) {
  const std::string p = path("log.jsonl");
  AppendWriter w(p);
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w.append_line("{\"a\":1}"));
  EXPECT_TRUE(w.append_line("{\"b\":2}"));
  EXPECT_TRUE(w.append_line(""));  // empty payload is a legal blank record
  EXPECT_EQ(w.lines_written(), 3u);
  EXPECT_EQ(w.bytes_written(), 8u + 8u + 1u);  // payloads + one '\n' each
  EXPECT_TRUE(w.flush());
  w.close();
  EXPECT_FALSE(w.ok());
  const auto lines = lines_of(p);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "{\"a\":1}");
  EXPECT_EQ(lines[1], "{\"b\":2}");
  EXPECT_EQ(lines[2], "");
}

TEST_F(AppendTest, ReopenAppendsAfterExistingContent) {
  const std::string p = path("log.jsonl");
  {
    AppendWriter w(p);
    ASSERT_TRUE(w.append_line("first"));
  }
  {
    AppendWriter w(p);  // second lifetime: O_APPEND, never truncates
    ASSERT_TRUE(w.append_line("second"));
    EXPECT_EQ(w.lines_written(), 1u);  // counters are per-writer
  }
  const auto lines = lines_of(p);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "first");
  EXPECT_EQ(lines[1], "second");
}

TEST_F(AppendTest, RejectsEmbeddedNewline) {
  const std::string p = path("log.jsonl");
  AppendWriter w(p);
  EXPECT_FALSE(w.append_line("torn\nframing"));
  EXPECT_TRUE(w.ok());  // rejection is not an I/O failure
  EXPECT_TRUE(w.append_line("intact"));
  const auto lines = lines_of(p);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "intact");
}

TEST_F(AppendTest, OpenFailureIsDeadStateNotThrow) {
  AppendWriter w;
  EXPECT_FALSE(w.open(path("no_such_dir") + "/log.jsonl"));
  EXPECT_FALSE(w.ok());
  EXPECT_FALSE(w.append_line("dropped"));
  EXPECT_FALSE(w.flush());
  EXPECT_EQ(w.lines_written(), 0u);
}

TEST_F(AppendTest, ReopenResetsDeadState) {
  AppendWriter w;
  EXPECT_FALSE(w.open(path("no_such_dir") + "/log.jsonl"));
  EXPECT_TRUE(w.open(path("log.jsonl")));
  EXPECT_TRUE(w.ok());
  EXPECT_TRUE(w.append_line("alive"));
}

TEST_F(AppendTest, MoveTransfersOwnership) {
  const std::string p = path("log.jsonl");
  AppendWriter a(p);
  ASSERT_TRUE(a.append_line("one"));
  AppendWriter b(std::move(a));
  EXPECT_FALSE(a.ok());  // NOLINT(bugprone-use-after-move): moved-from is dead
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(b.path(), p);
  EXPECT_TRUE(b.append_line("two"));
  AppendWriter c;
  c = std::move(b);
  EXPECT_TRUE(c.append_line("three"));
  c.close();
  const auto lines = lines_of(p);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2], "three");
}

}  // namespace
}  // namespace stco::persist
