// StcoEngine disk cost-cache tests: a warm cache restores memoized costs
// AND the calibrated PPA weights (so a fully warm engine re-evaluates
// nothing), a corrupt cache degrades to a counted cold start, and the
// $STCO_CACHE_DIR environment variable selects the directory.

#include "src/stco/loop.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/obs/obs.hpp"

namespace stco {
namespace {

namespace fs = std::filesystem;

class CostCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path("persist_cache_scratch") /
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  StcoConfig config() const {
    StcoConfig cfg;
    cfg.benchmark = "s298";
    cfg.cache_dir = dir_.string();
    return cfg;
  }

  fs::path dir_;
};

TEST_F(CostCacheTest, WarmStartRestoresCostsAndWeights) {
  const StcoConfig cfg = config();
  const TechGrid grid(cfg.ranges, cfg.grid_n);
  double cold_cost = 0.0;
  std::string cache_path;
  {
    StcoEngine cold(cfg, SpiceBackend{});
    EXPECT_EQ(cold.warm_cache_entries(), 0u);
    cold_cost = cold.cost(grid.point(0));
    cache_path = cold.cost_cache_path();
    // Destructor persists the cache.
  }
  ASSERT_FALSE(cache_path.empty());
  ASSERT_TRUE(fs::exists(cache_path));

  const std::uint64_t warm_before = obs::snapshot().counter_or("persist.cache.warm_hits");
  StcoEngine warm(cfg, SpiceBackend{});
  EXPECT_GE(warm.warm_cache_entries(), 1u);
  EXPECT_EQ(warm.cost(grid.point(0)), cold_cost);  // bit-identical from disk
  // Weights came from the cache too: no library was built to serve that hit.
  EXPECT_EQ(warm.timing().evaluations.load(), 0u);
  if constexpr (obs::kEnabled) {
    EXPECT_GT(obs::snapshot().counter_or("persist.cache.warm_hits"), warm_before);
  }
}

TEST_F(CostCacheTest, CorruptCacheDegradesToCountedColdStart) {
  const StcoConfig cfg = config();
  const TechGrid grid(cfg.ranges, cfg.grid_n);
  double cold_cost = 0.0;
  std::string cache_path;
  {
    StcoEngine cold(cfg, SpiceBackend{});
    cold_cost = cold.cost(grid.point(0));
    cache_path = cold.cost_cache_path();
  }
  std::string bytes;
  {
    std::ifstream in(cache_path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    bytes = ss.str();
  }
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  std::ofstream(cache_path, std::ios::binary)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));

  const std::uint64_t corrupt_before =
      obs::snapshot().counter_or("persist.corrupt_artifacts");
  StcoEngine again(cfg, SpiceBackend{});
  EXPECT_EQ(again.warm_cache_entries(), 0u);  // cache ignored, not trusted
  if constexpr (obs::kEnabled) {
    EXPECT_GT(obs::snapshot().counter_or("persist.corrupt_artifacts"), corrupt_before);
  }
  // The engine regenerates the same deterministic cost from scratch.
  EXPECT_EQ(again.cost(grid.point(0)), cold_cost);
}

TEST_F(CostCacheTest, ConfigChangeInvalidatesCache) {
  const StcoConfig cfg = config();
  const TechGrid grid(cfg.ranges, cfg.grid_n);
  {
    StcoEngine cold(cfg, SpiceBackend{});
    (void)cold.cost(grid.point(0));
  }
  // Different cost weights: cached costs would be wrong, so the
  // fingerprint must reject the artifact (silently — not corruption).
  StcoConfig other = config();
  other.w_area = 0.25;
  StcoEngine engine(other, SpiceBackend{});
  EXPECT_EQ(engine.warm_cache_entries(), 0u);
}

TEST_F(CostCacheTest, EnvVarSelectsCacheDirectory) {
  StcoConfig cfg;
  cfg.benchmark = "s298";  // cache_dir left empty -> $STCO_CACHE_DIR
  ASSERT_EQ(setenv("STCO_CACHE_DIR", dir_.string().c_str(), 1), 0);
  std::string cache_path;
  {
    StcoEngine engine(cfg, SpiceBackend{});
    cache_path = engine.cost_cache_path();
    engine.save_cost_cache();
  }
  unsetenv("STCO_CACHE_DIR");
  EXPECT_EQ(fs::path(cache_path).parent_path(), dir_);
  EXPECT_TRUE(fs::exists(cache_path));

  // With neither config nor environment, persistence is off.
  StcoEngine off(cfg, SpiceBackend{});
  EXPECT_TRUE(off.cost_cache_path().empty());
  EXPECT_EQ(off.warm_cache_entries(), 0u);
}

}  // namespace
}  // namespace stco
