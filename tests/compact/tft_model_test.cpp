#include "src/compact/tft_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stco::compact {
namespace {

TftParams ntype() {
  TftParams p;
  p.type = TftType::kNType;
  p.mu0 = 5e-3;
  p.vth = 1.0;
  p.gamma = 0.3;
  p.cox = 2e-4;
  p.width = 20e-6;
  p.length = 4e-6;
  return p;
}

TftParams ptype() {
  TftParams p = ntype();
  p.type = TftType::kPType;
  p.vth = -1.0;
  return p;
}

TEST(TftModel, OffBelowThresholdOnAbove) {
  const auto p = ntype();
  const double ioff = tft_current(p, 0.0, 2.0, 0.0);
  const double ion = tft_current(p, 4.0, 2.0, 0.0);
  EXPECT_GT(ion, 1e4 * ioff);
  EXPECT_GT(ioff, 0.0);  // smooth subthreshold, not hard zero
}

TEST(TftModel, SaturationCurrentMatchesClosedForm) {
  // Deep saturation, lambda = 0: I = K/(g+1) * (Vgs-Vth)^(g+1).
  auto p = ntype();
  p.lambda = 0.0;
  const double vgs = 5.0, vds = 10.0;
  const double k = (p.width / p.length) * p.mu0 * p.cox;
  const double expected = k / (p.gamma + 1.0) * std::pow(vgs - p.vth, p.gamma + 1.0);
  EXPECT_NEAR(tft_current(p, vgs, vds, 0.0) / expected, 1.0, 0.02);
}

TEST(TftModel, TriodeRegionLinearInSmallVds) {
  auto p = ntype();
  p.lambda = 0.0;
  const double i1 = tft_current(p, 5.0, 0.05, 0.0);
  const double i2 = tft_current(p, 5.0, 0.10, 0.0);
  EXPECT_NEAR(i2 / i1, 2.0, 0.05);
}

TEST(TftModel, GmMatchesFiniteDifference) {
  const auto p = ntype();
  for (double vg : {0.5, 1.5, 3.0}) {
    const auto e = evaluate_tft(p, vg, 2.0, 0.0);
    const double h = 1e-6;
    const double fd = (tft_current(p, vg + h, 2.0, 0.0) -
                       tft_current(p, vg - h, 2.0, 0.0)) / (2 * h);
    EXPECT_NEAR(e.gm, fd, std::max(1e-12, 1e-5 * std::fabs(fd)));
  }
}

TEST(TftModel, GdsMatchesFiniteDifference) {
  const auto p = ntype();
  for (double vd : {0.1, 1.0, 4.0}) {
    const auto e = evaluate_tft(p, 3.0, vd, 0.0);
    const double h = 1e-6;
    const double fd = (tft_current(p, 3.0, vd + h, 0.0) -
                       tft_current(p, 3.0, vd - h, 0.0)) / (2 * h);
    EXPECT_NEAR(e.gds, fd, std::max(1e-12, 1e-5 * std::fabs(fd)));
  }
}

TEST(TftModel, SourceDrainSymmetry) {
  // Swapping source and drain must negate the current (symmetric device).
  const auto p = ntype();
  const double fwd = tft_current(p, 3.0, 2.0, 0.0);
  const double rev = tft_current(p, 1.0, -2.0, 0.0);
  // rev case: vg=1, vd=-2, vs=0 is the same device as vg'=3, vd'=2 seen
  // from the other terminal.
  EXPECT_NEAR(rev, -fwd, 1e-15 + 1e-9 * std::fabs(fwd));
}

TEST(TftModel, ReverseModeDerivativesMatchFiniteDifference) {
  const auto p = ntype();
  const double vg = 2.0, vd = -1.5, vs = 0.0, h = 1e-6;
  const auto e = evaluate_tft(p, vg, vd, vs);
  const double fd_gm =
      (tft_current(p, vg + h, vd, vs) - tft_current(p, vg - h, vd, vs)) / (2 * h);
  const double fd_gds =
      (tft_current(p, vg, vd + h, vs) - tft_current(p, vg, vd - h, vs)) / (2 * h);
  EXPECT_NEAR(e.gm, fd_gm, 1e-5 * std::max(1.0, std::fabs(fd_gm)));
  EXPECT_NEAR(e.gds, fd_gds, 1e-5 * std::max(1.0, std::fabs(fd_gds)));
}

TEST(TftModel, PTypeMirrorsNType) {
  const auto pn = ntype();
  const auto pp = ptype();
  const double in = tft_current(pn, 3.0, 2.0, 0.0);
  const double ip = tft_current(pp, -3.0, -2.0, 0.0);
  EXPECT_NEAR(ip, -in, 1e-15 + 1e-12 * std::fabs(in));
}

TEST(TftModel, PTypeConductsForNegativeGate) {
  const auto p = ptype();
  const double on = std::fabs(tft_current(p, -4.0, -2.0, 0.0));
  const double off = std::fabs(tft_current(p, 1.0, -2.0, 0.0));
  EXPECT_GT(on, 1e4 * off);
}

TEST(TftModel, Eq1MobilityLaw) {
  // Above threshold, mu = mu0 |Vg - Vth|^gamma (paper Eq. 1).
  const auto p = ntype();
  for (double ov : {1.0, 2.0, 4.0}) {
    const double mu = effective_mobility(p, p.vth + ov);
    EXPECT_NEAR(mu / (p.mu0 * std::pow(ov, p.gamma)), 1.0, 0.05);
  }
  // mu0 is the mobility at exactly 1 V overdrive.
  EXPECT_NEAR(effective_mobility(p, p.vth + 1.0) / p.mu0, 1.0, 0.05);
}

TEST(TftModel, LambdaIncreasesSaturationSlope) {
  auto p0 = ntype();
  p0.lambda = 0.0;
  auto p1 = ntype();
  p1.lambda = 0.05;
  const double s0 = tft_current(p0, 3.0, 8.0, 0.0) - tft_current(p0, 3.0, 6.0, 0.0);
  const double s1 = tft_current(p1, 3.0, 8.0, 0.0) - tft_current(p1, 3.0, 6.0, 0.0);
  EXPECT_GT(s1, s0);
}

TEST(TftModel, InvalidParamsThrow) {
  auto p = ntype();
  p.gamma = -0.1;
  EXPECT_THROW(evaluate_tft(p, 1, 1, 0), std::invalid_argument);
  p = ntype();
  p.length = 0.0;
  EXPECT_THROW(evaluate_tft(p, 1, 1, 0), std::invalid_argument);
}

TEST(TftModel, GateCapacitance) {
  const auto p = ntype();
  EXPECT_NEAR(gate_half_capacitance(p), 0.5 * p.cox * p.width * p.length, 1e-20);
}

}  // namespace
}  // namespace stco::compact
