// Property-based sweeps over the compact-model parameter space: every
// combination must satisfy the model's structural invariants (derivative
// consistency, terminal symmetry, monotonicity, geometric scaling).

#include <gtest/gtest.h>

#include <cmath>

#include "src/compact/tft_model.hpp"

namespace stco::compact {
namespace {

struct ModelCase {
  TftType type;
  double vth;
  double gamma;
  double vdd;
};

class CompactModelProperty : public ::testing::TestWithParam<ModelCase> {
 protected:
  TftParams params() const {
    const auto& c = GetParam();
    TftParams p;
    p.type = c.type;
    p.vth = c.type == TftType::kNType ? c.vth : -c.vth;
    p.gamma = c.gamma;
    p.mu0 = 3e-3;
    p.cox = 1.5e-4;
    p.width = 12e-6;
    p.length = 3e-6;
    return p;
  }
  double sign() const {
    return GetParam().type == TftType::kNType ? 1.0 : -1.0;
  }
};

TEST_P(CompactModelProperty, DerivativesMatchFiniteDifference) {
  const auto p = params();
  const double s = sign();
  for (double vg_frac : {0.3, 0.6, 1.0})
    for (double vd_frac : {0.2, 0.8}) {
      const double vg = s * vg_frac * GetParam().vdd;
      const double vd = s * vd_frac * GetParam().vdd;
      const auto e = evaluate_tft(p, vg, vd, 0.0);
      const double h = 1e-6;
      const double fd_gm =
          (tft_current(p, vg + h, vd, 0.0) - tft_current(p, vg - h, vd, 0.0)) / (2 * h);
      const double fd_gds =
          (tft_current(p, vg, vd + h, 0.0) - tft_current(p, vg, vd - h, 0.0)) / (2 * h);
      EXPECT_NEAR(e.gm, fd_gm, 1e-4 * std::max(1e-9, std::fabs(fd_gm)));
      EXPECT_NEAR(e.gds, fd_gds, 1e-4 * std::max(1e-9, std::fabs(fd_gds)));
    }
}

TEST_P(CompactModelProperty, TerminalSymmetry) {
  // Swapping source and drain negates the current.
  const auto p = params();
  const double s = sign();
  const double vg = s * 0.8 * GetParam().vdd, vd = s * 0.5 * GetParam().vdd;
  const double fwd = tft_current(p, vg, vd, 0.0);
  const double rev = tft_current(p, vg - vd, -vd, 0.0);
  EXPECT_NEAR(rev, -fwd, 1e-12 + 1e-9 * std::fabs(fwd));
}

TEST_P(CompactModelProperty, MonotoneInGateDrive) {
  const auto p = params();
  const double s = sign();
  const double vd = s * 0.5 * GetParam().vdd;
  double prev = -1.0;
  for (double f = 0.0; f <= 1.2; f += 0.1) {
    const double i = std::fabs(tft_current(p, s * f * GetParam().vdd, vd, 0.0));
    if (prev >= 0.0) {
      EXPECT_GE(i, prev * (1.0 - 1e-12));
    }
    prev = i;
  }
}

TEST_P(CompactModelProperty, MonotoneInDrainBias) {
  const auto p = params();
  const double s = sign();
  const double vg = s * GetParam().vdd;
  double prev = -1.0;
  for (double f = 0.05; f <= 1.5; f += 0.15) {
    const double i = std::fabs(tft_current(p, vg, s * f * GetParam().vdd, 0.0));
    if (prev >= 0.0) {
      EXPECT_GE(i, prev * (1.0 - 1e-12));
    }
    prev = i;
  }
}

TEST_P(CompactModelProperty, ScalesWithGeometry) {
  auto p = params();
  const double s = sign();
  const double vg = s * GetParam().vdd, vd = s * 0.6 * GetParam().vdd;
  const double base = tft_current(p, vg, vd, 0.0);
  auto p2 = p;
  p2.width *= 3.0;
  EXPECT_NEAR(tft_current(p2, vg, vd, 0.0) / base, 3.0, 1e-9);
  auto p3 = p;
  p3.length *= 2.0;
  EXPECT_NEAR(tft_current(p3, vg, vd, 0.0) / base, 0.5, 1e-9);
}

TEST_P(CompactModelProperty, ZeroVdsZeroCurrent) {
  const auto p = params();
  EXPECT_DOUBLE_EQ(tft_current(p, sign() * GetParam().vdd, 0.0, 0.0), 0.0);
}

TEST_P(CompactModelProperty, EffectiveMobilityFollowsEq1) {
  const auto p = params();
  const double s = sign();
  for (double ov : {0.5, 1.5, 3.0}) {
    const double vgs = p.type == TftType::kNType ? p.vth + ov : p.vth - ov;
    const double mu = effective_mobility(p, vgs);
    EXPECT_NEAR(mu / (p.mu0 * std::pow(ov, p.gamma)), 1.0, 0.1) << "ov=" << ov << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterSweep, CompactModelProperty,
    ::testing::Values(
        ModelCase{TftType::kNType, 0.5, 0.0, 3.0},
        ModelCase{TftType::kNType, 0.8, 0.25, 3.0},
        ModelCase{TftType::kNType, 1.2, 0.45, 5.0},
        ModelCase{TftType::kNType, 1.6, 0.14, 5.0},
        ModelCase{TftType::kNType, 0.4, 0.9, 2.0},
        ModelCase{TftType::kPType, 0.5, 0.0, 3.0},
        ModelCase{TftType::kPType, 0.8, 0.28, 3.0},
        ModelCase{TftType::kPType, 1.1, 0.45, 5.0},
        ModelCase{TftType::kPType, 1.9, 0.42, 6.0}),
    [](const ::testing::TestParamInfo<ModelCase>& info) {
      const auto& c = info.param;
      return std::string(c.type == TftType::kNType ? "N" : "P") + "_vth" +
             std::to_string(static_cast<int>(c.vth * 10)) + "_g" +
             std::to_string(static_cast<int>(c.gamma * 100)) + "_vdd" +
             std::to_string(static_cast<int>(c.vdd));
    });


TEST(Temperature, SubthresholdCurrentRisesWithT) {
  TftParams p;
  p.type = TftType::kNType;
  p.vth = 1.0;
  p.mu0 = 3e-3;
  p.cox = 1.5e-4;
  p.width = 12e-6;
  p.length = 3e-6;
  TftParams hot = p;
  hot.temperature_k = 400.0;
  // Below threshold the softplus tail widens with temperature.
  const double cold_i = tft_current(p, 0.3, 2.0, 0.0);
  const double hot_i = tft_current(hot, 0.3, 2.0, 0.0);
  EXPECT_GT(hot_i, 3.0 * cold_i);
  // Far above threshold the temperature dependence is weak.
  const double cold_on = tft_current(p, 4.0, 2.0, 0.0);
  const double hot_on = tft_current(hot, 4.0, 2.0, 0.0);
  EXPECT_NEAR(hot_on / cold_on, 1.0, 0.1);
}

}  // namespace
}  // namespace stco::compact
