#include "src/compact/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/compact/technology.hpp"

namespace stco::compact {
namespace {

/// Noise-free transfer curve of a known compact-model device.
TransferCurve curve_of(const TftParams& p, double vd, double vg_lo, double vg_hi,
                       std::size_t n = 121) {
  TransferCurve out;
  for (std::size_t i = 0; i < n; ++i) {
    const double vg =
        vg_lo + (vg_hi - vg_lo) * static_cast<double>(i) / static_cast<double>(n - 1);
    out.push_back({vg, vd, tft_current(p, vg, vd, 0.0)});
  }
  return out;
}

TftParams device() {
  auto p = make_nfet(cnt_tech(), 10e-6, 2e-6);
  p.vth = 0.8;
  return p;
}

TEST(DeviceMetrics, ConstantCurrentVthNearModelVth) {
  const auto p = device();
  const auto curve = curve_of(p, 2.0, -2.0, 4.0);
  const double vth = vth_constant_current(curve, p.width, p.length);
  ASSERT_FALSE(std::isnan(vth));
  // The constant-current criterion lands near (within a few hundred mV of)
  // the model threshold.
  EXPECT_NEAR(vth, p.vth, 0.45);
}

TEST(DeviceMetrics, ExtrapolatedVthTracksModelVth) {
  for (double true_vth : {0.5, 0.8, 1.2}) {
    auto p = device();
    p.vth = true_vth;
    const auto curve = curve_of(p, 0.1, -1.0, 5.0);  // linear-region extraction
    const double vth = vth_linear_extrapolation(curve);
    ASSERT_FALSE(std::isnan(vth)) << true_vth;
    EXPECT_NEAR(vth, true_vth, 0.5) << true_vth;
    // The method must track shifts: slope of extracted vs true ~ 1.
  }
  // Relative tracking between two devices 0.5 V apart.
  auto a = device();
  a.vth = 0.6;
  auto b = device();
  b.vth = 1.1;
  const double va = vth_linear_extrapolation(curve_of(a, 0.1, -1.0, 5.0));
  const double vb = vth_linear_extrapolation(curve_of(b, 0.1, -1.0, 5.0));
  EXPECT_NEAR(vb - va, 0.5, 0.1);
}

TEST(DeviceMetrics, SubthresholdSwingMatchesSsFactor) {
  auto p = device();
  p.ss_factor = 2.0;
  const auto curve = curve_of(p, 2.0, -2.0, 4.0, 241);
  const double swing = subthreshold_swing(curve);
  ASSERT_FALSE(std::isnan(swing));
  // Theoretical swing = ss_factor * kT/q * ln(10) * (gamma+1 exponent ~ 1).
  const double expected = 2.0 * 0.02585 * std::log(10.0);
  EXPECT_NEAR(swing / expected, 1.0, 0.35);
  // Higher ss_factor -> larger swing.
  auto steep = device();
  steep.ss_factor = 1.2;
  const double swing2 = subthreshold_swing(curve_of(steep, 2.0, -2.0, 4.0, 241));
  EXPECT_LT(swing2, swing);
}

TEST(DeviceMetrics, OnOffRatioSpansDecades) {
  const auto curve = curve_of(device(), 2.0, -2.0, 4.0);
  EXPECT_GT(on_off_ratio(curve), 1e6);
}

TEST(DeviceMetrics, GmMaxPositiveAndScalesWithWidth) {
  auto p = device();
  const double gm1 = max_transconductance(curve_of(p, 2.0, -2.0, 4.0));
  p.width *= 2.0;
  const double gm2 = max_transconductance(curve_of(p, 2.0, -2.0, 4.0));
  EXPECT_GT(gm1, 0.0);
  EXPECT_NEAR(gm2 / gm1, 2.0, 0.05);
}

TEST(DeviceMetrics, ExtractFiguresBundle) {
  const auto p = device();
  const auto f = extract_figures(curve_of(p, 2.0, -2.0, 4.0), p.width, p.length);
  EXPECT_FALSE(std::isnan(f.vth_cc));
  EXPECT_FALSE(std::isnan(f.vth_extrap));
  EXPECT_FALSE(std::isnan(f.swing));
  EXPECT_GT(f.on_off, 1e3);
  EXPECT_GT(f.gm_max, 0.0);
}

TEST(DeviceMetrics, DegenerateInputsRejectedOrNan) {
  EXPECT_THROW(vth_constant_current({}, 1e-6, 1e-6), std::invalid_argument);
  EXPECT_THROW(on_off_ratio({{0, 0, 0}}), std::invalid_argument);
  // Never-crossing constant-current criterion -> NaN.
  TransferCurve flat = {{0, 1, 1e-15}, {1, 1, 1.1e-15}, {2, 1, 1.2e-15}};
  EXPECT_TRUE(std::isnan(vth_constant_current(flat, 1e-6, 1e-6)));
}

}  // namespace
}  // namespace stco::compact
