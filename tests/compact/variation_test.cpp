#include "src/compact/variation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/compact/technology.hpp"

namespace stco::compact {
namespace {

TftParams nominal() { return make_nfet(cnt_tech(), 10e-6, 2e-6); }

TEST(Variation, SampleRespectsModel) {
  numeric::Rng rng(1);
  const VariationModel vm;
  double vth_sum = 0.0, vth_sq = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const auto p = sample_variation(nominal(), vm, rng);
    const double d = p.vth - nominal().vth;
    vth_sum += d;
    vth_sq += d * d;
    EXPECT_GT(p.mu0, 0.0);
    EXPECT_GE(p.gamma, 0.0);
  }
  EXPECT_NEAR(vth_sum / n, 0.0, 0.005);
  EXPECT_NEAR(std::sqrt(vth_sq / n), vm.sigma_vth, 0.005);
}

TEST(Variation, MonteCarloStatsConsistent) {
  const auto st = on_current_spread(nominal(), {}, 3.0, 3.0, 600);
  EXPECT_EQ(st.samples, 600u);
  EXPECT_GT(st.mean, 0.0);
  EXPECT_GT(st.stddev, 0.0);
  EXPECT_LT(st.p05, st.mean);
  EXPECT_GT(st.p95, st.mean);
  EXPECT_LT(st.stddev / st.mean, 0.5);  // reasonable spread
}

TEST(Variation, ZeroSigmaCollapsesSpread) {
  VariationModel vm;
  vm.sigma_vth = 0.0;
  vm.sigma_mu0_frac = 0.0;
  vm.sigma_gamma = 0.0;
  const auto st = on_current_spread(nominal(), vm, 3.0, 3.0, 100);
  EXPECT_NEAR(st.stddev / st.mean, 0.0, 1e-12);
  EXPECT_NEAR(st.p95, st.p05, 1e-18);
}

TEST(Variation, LargerVthSigmaWidensSpread) {
  VariationModel small, big;
  small.sigma_vth = 0.02;
  big.sigma_vth = 0.15;
  const auto ss = on_current_spread(nominal(), small, 2.0, 3.0, 500);
  const auto sb = on_current_spread(nominal(), big, 2.0, 3.0, 500);
  EXPECT_GT(sb.stddev / sb.mean, ss.stddev / ss.mean);
}

TEST(Variation, SubthresholdAmplifiesVthVariation) {
  // Near threshold the current depends exponentially on vth: relative
  // spread must far exceed the on-state spread.
  const auto sub = on_current_spread(nominal(), {}, nominal().vth - 0.2, 3.0, 500);
  const auto on = on_current_spread(nominal(), {}, nominal().vth + 2.0, 3.0, 500);
  EXPECT_GT(sub.stddev / sub.mean, 3.0 * on.stddev / on.mean);
}

TEST(Variation, DeterministicPerSeed) {
  const auto a = on_current_spread(nominal(), {}, 3.0, 3.0, 100, 9);
  const auto b = on_current_spread(nominal(), {}, 3.0, 3.0, 100, 9);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.p95, b.p95);
}

TEST(Variation, InvalidSampleCountThrows) {
  EXPECT_THROW(monte_carlo(nominal(), {}, 1, 1, [](const TftParams&) { return 0.0; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace stco::compact
