#include "src/compact/extraction.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stco::compact {
namespace {

TEST(ReferenceModel, ContactResistanceReducesOnCurrent) {
  const auto dev = fig3_ltps();
  ReferenceExtras no_rc = dev.extras;
  no_rc.contact_resistance = 0.0;
  const double with_rc = reference_current(dev.truth, dev.extras, 8.0, 8.0, 0.0);
  const double without = reference_current(dev.truth, no_rc, 8.0, 8.0, 0.0);
  EXPECT_LT(with_rc, without);
  EXPECT_GT(with_rc, 0.5 * without);
}

TEST(ReferenceModel, MeasurementNoiseIsBounded) {
  const auto dev = fig3_ltps();
  numeric::Rng rng(1);
  const auto pts = measure_transfer(dev.truth, dev.extras, 2.0, dev.vg_sweep, rng);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double clean =
        reference_current(dev.truth, dev.extras, pts[i].vg, pts[i].vd, 0.0);
    if (std::fabs(clean) < 1e-12) continue;
    EXPECT_NEAR(pts[i].id / clean, 1.0, 0.1);
  }
}

TEST(Extraction, RecoversParametersFromCleanNTypeData) {
  auto dev = fig3_ltps();
  dev.extras.noise_rel = 0.0;
  dev.extras.contact_resistance = 0.0;
  dev.extras.lambda = 0.0;
  dev.extras.mobility_rolloff = 0.0;
  // With the reference reduced to the compact model itself, extraction must
  // recover the truth nearly exactly.
  const auto res = validate_fig3_device(dev, 5);
  EXPECT_NEAR(res.extraction.params.vth, dev.truth.vth, 0.08);
  EXPECT_NEAR(res.extraction.params.mu0 / dev.truth.mu0, 1.0, 0.1);
  EXPECT_NEAR(res.extraction.params.gamma, dev.truth.gamma, 0.1);
  EXPECT_LT(res.extraction.on_mape, 2.0);
}

TEST(Extraction, Fig3DevicesFitWithinRealisticError) {
  // Full non-idealities: the compact model should still land single-digit
  // on-state MAPE, like the paper's visual agreement in Fig. 3.
  for (const auto& dev : {fig3_cnt(), fig3_ltps(), fig3_igzo()}) {
    const auto res = validate_fig3_device(dev);
    EXPECT_LT(res.extraction.on_mape, 7.0) << dev.name;
    EXPECT_GT(res.extraction.params.mu0, 0.0) << dev.name;
    // Extracted parameters land near the reference-device truth.
    EXPECT_NEAR(res.extraction.params.vth, dev.truth.vth,
                0.15 * std::fabs(dev.truth.vth))
        << dev.name;
    EXPECT_NEAR(res.extraction.params.mu0 / dev.truth.mu0, 1.0, 0.25) << dev.name;
  }
}

TEST(Extraction, CntIsPTypeFit) {
  const auto res = validate_fig3_device(fig3_cnt());
  EXPECT_EQ(res.extraction.params.type, TftType::kPType);
  EXPECT_LT(res.extraction.params.vth, 0.0);
}

TEST(Extraction, DeterministicForSeed) {
  const auto r1 = validate_fig3_device(fig3_igzo(), 9);
  const auto r2 = validate_fig3_device(fig3_igzo(), 9);
  EXPECT_DOUBLE_EQ(r1.extraction.params.mu0, r2.extraction.params.mu0);
  EXPECT_DOUBLE_EQ(r1.extraction.params.vth, r2.extraction.params.vth);
}

TEST(Extraction, GeometriesMatchPaperFig3) {
  EXPECT_NEAR(fig3_cnt().truth.length, 25e-6, 1e-12);
  EXPECT_NEAR(fig3_cnt().truth.width, 125e-6, 1e-12);
  EXPECT_NEAR(fig3_ltps().truth.length, 16e-6, 1e-12);
  EXPECT_NEAR(fig3_ltps().truth.width, 40e-6, 1e-12);
  EXPECT_NEAR(fig3_igzo().truth.length, 20e-6, 1e-12);
  EXPECT_NEAR(fig3_igzo().truth.width, 30e-6, 1e-12);
}

}  // namespace
}  // namespace stco::compact
