#include "src/tensor/optim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/tensor/ops.hpp"

namespace stco::tensor {
namespace {

/// Minimize f(w) = (w - 3)^2 and check convergence.
double run_scalar_descent(Optimizer& opt, Tensor& w, int steps) {
  for (int i = 0; i < steps; ++i) {
    opt.zero_grad();
    const Tensor loss = mse_loss(w, Tensor::scalar(3.0));
    loss.backward();
    opt.step();
  }
  return w.item();
}

TEST(Sgd, ConvergesOnQuadratic) {
  Tensor w = Tensor::scalar(0.0, true);
  Sgd opt({w}, 0.1);
  EXPECT_NEAR(run_scalar_descent(opt, w, 200), 3.0, 1e-6);
}

TEST(Sgd, MomentumConvergesFaster) {
  Tensor w1 = Tensor::scalar(0.0, true);
  Sgd plain({w1}, 0.02);
  run_scalar_descent(plain, w1, 50);
  Tensor w2 = Tensor::scalar(0.0, true);
  Sgd mom({w2}, 0.02, 0.9);
  run_scalar_descent(mom, w2, 50);
  EXPECT_LT(std::fabs(w2.item() - 3.0), std::fabs(w1.item() - 3.0));
}

TEST(Adam, ConvergesOnQuadratic) {
  Tensor w = Tensor::scalar(-5.0, true);
  Adam opt({w}, 0.2);
  EXPECT_NEAR(run_scalar_descent(opt, w, 300), 3.0, 1e-4);
}

TEST(Adam, WeightDecayShrinksSolution) {
  Tensor w = Tensor::scalar(0.0, true);
  Adam opt({w}, 0.1, 0.9, 0.999, 1e-8, /*weight_decay=*/1.0);
  run_scalar_descent(opt, w, 500);
  EXPECT_LT(w.item(), 3.0);  // pulled below the unregularized optimum
  EXPECT_GT(w.item(), 0.5);
}

TEST(Optimizer, ClipGradNorm) {
  Tensor w = Tensor::from_data({3.0, 4.0}, 1, 2, true);
  Sgd opt({w}, 0.0);
  opt.zero_grad();
  // Loss = sum(w * w): grad = 2w = (6, 8), norm 10.
  sum_all(mul(w, w)).backward();
  const double pre = opt.clip_grad_norm(5.0);
  EXPECT_NEAR(pre, 10.0, 1e-9);
  EXPECT_NEAR(w.grad()[0], 3.0, 1e-9);
  EXPECT_NEAR(w.grad()[1], 4.0, 1e-9);
}

TEST(Adam, MultiParameterRegression) {
  // Fit y = 2x + 1 with a linear model trained by Adam.
  Tensor w = Tensor::scalar(0.0, true);
  Tensor b = Tensor::scalar(0.0, true);
  const Tensor x = Tensor::from_data({0, 1, 2, 3}, 4, 1);
  const Tensor y = Tensor::from_data({1, 3, 5, 7}, 4, 1);
  Adam opt({w, b}, 0.05);
  for (int i = 0; i < 2000; ++i) {
    opt.zero_grad();
    const Tensor pred = add(matmul(x, w), b);
    mse_loss(pred, y).backward();
    opt.step();
  }
  EXPECT_NEAR(w.item(), 2.0, 1e-3);
  EXPECT_NEAR(b.item(), 1.0, 1e-3);
}

}  // namespace
}  // namespace stco::tensor
