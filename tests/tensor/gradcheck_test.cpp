// Finite-difference gradient verification for every differentiable op.
// Each case builds a scalar loss from the op, backprops, and compares each
// leaf gradient against a central finite difference.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "src/numeric/rng.hpp"
#include "src/tensor/ops.hpp"

namespace stco::tensor {
namespace {

using LossFn = std::function<Tensor(const std::vector<Tensor>&)>;

/// Checks d loss / d leaves against central differences.
void gradcheck(const LossFn& loss, std::vector<Tensor> leaves, double tol = 1e-6,
               double h = 1e-6) {
  for (auto& leaf : leaves) leaf.zero_grad();  // leaves may be reused across checks
  const Tensor l = loss(leaves);
  l.backward();
  for (auto& leaf : leaves) {
    const auto analytic = leaf.grad();
    for (std::size_t i = 0; i < leaf.size(); ++i) {
      const double orig = leaf.value()[i];
      leaf.value()[i] = orig + h;
      const double lp = loss(leaves).item();
      leaf.value()[i] = orig - h;
      const double lm = loss(leaves).item();
      leaf.value()[i] = orig;
      const double fd = (lp - lm) / (2 * h);
      EXPECT_NEAR(analytic[i], fd, tol * std::max(1.0, std::fabs(fd)))
          << "leaf element " << i;
    }
  }
}

Tensor random_tensor(std::size_t r, std::size_t c, numeric::Rng& rng, double lo = -1,
                     double hi = 1) {
  std::vector<double> d(r * c);
  for (auto& v : d) v = rng.uniform(lo, hi);
  return Tensor::from_data(std::move(d), r, c, true);
}

TEST(GradCheck, Matmul) {
  numeric::Rng rng(1);
  auto a = random_tensor(3, 4, rng);
  auto b = random_tensor(4, 2, rng);
  gradcheck([](const std::vector<Tensor>& l) { return sum_all(matmul(l[0], l[1])); },
            {a, b});
}

TEST(GradCheck, AddSameShapeAndRowBroadcastAndScalar) {
  numeric::Rng rng(2);
  auto a = random_tensor(3, 3, rng);
  auto b = random_tensor(3, 3, rng);
  gradcheck([](const std::vector<Tensor>& l) {
    return mean_all(mul(add(l[0], l[1]), l[0]));
  }, {a, b});
  auto bias = random_tensor(1, 3, rng);
  gradcheck([](const std::vector<Tensor>& l) {
    return mean_all(mul(add(l[0], l[1]), l[0]));
  }, {a, bias});
  auto s = random_tensor(1, 1, rng);
  gradcheck([](const std::vector<Tensor>& l) {
    return mean_all(mul(add(l[0], l[1]), l[0]));
  }, {a, s});
}

TEST(GradCheck, SubAndMulBroadcasts) {
  numeric::Rng rng(3);
  auto a = random_tensor(2, 4, rng);
  auto row = random_tensor(1, 4, rng);
  gradcheck([](const std::vector<Tensor>& l) {
    return sum_all(mul(sub(l[0], l[1]), sub(l[0], l[1])));
  }, {a, row});
}

TEST(GradCheck, Activations) {
  numeric::Rng rng(4);
  auto x = random_tensor(3, 3, rng, -2, 2);
  for (auto f : {relu, tanh_t, sigmoid, exp_t, softplus}) {
    gradcheck([f](const std::vector<Tensor>& l) { return mean_all(f(l[0])); }, {x},
              1e-4, 1e-5);
  }
  gradcheck([](const std::vector<Tensor>& l) { return mean_all(leaky_relu(l[0], 0.1)); },
            {x}, 1e-4, 1e-5);
  gradcheck([](const std::vector<Tensor>& l) { return mean_all(elu(l[0], 1.0)); }, {x},
            1e-4, 1e-5);
}

TEST(GradCheck, Reductions) {
  numeric::Rng rng(5);
  auto x = random_tensor(4, 3, rng);
  gradcheck([](const std::vector<Tensor>& l) {
    return sum_all(mul(mean_rows(l[0]), mean_rows(l[0])));
  }, {x});
}

TEST(GradCheck, SegmentMean) {
  numeric::Rng rng(6);
  auto x = random_tensor(5, 2, rng);
  const IndexVec seg{0, 0, 1, 2, 2};
  gradcheck([&](const std::vector<Tensor>& l) {
    const Tensor m = segment_mean(l[0], seg, 3);
    return sum_all(mul(m, m));
  }, {x});
}

TEST(GradCheck, ConcatAndSlice) {
  numeric::Rng rng(7);
  auto a = random_tensor(3, 2, rng);
  auto b = random_tensor(3, 3, rng);
  gradcheck([](const std::vector<Tensor>& l) {
    const Tensor c = concat_cols({l[0], l[1]});
    return mean_all(mul(slice_cols(c, 1, 4), slice_cols(c, 0, 3)));
  }, {a, b});
}

TEST(GradCheck, GatherScatter) {
  numeric::Rng rng(8);
  auto x = random_tensor(4, 3, rng);
  const IndexVec idx{3, 1, 1, 0, 2};
  gradcheck([&](const std::vector<Tensor>& l) {
    const Tensor g = gather_rows(l[0], idx);
    const Tensor s = scatter_add_rows(g, idx, 4);
    return mean_all(mul(s, s));
  }, {x});
}

TEST(GradCheck, ScaleRows) {
  numeric::Rng rng(9);
  auto x = random_tensor(4, 3, rng);
  auto s = random_tensor(4, 1, rng);
  gradcheck([](const std::vector<Tensor>& l) {
    return sum_all(mul(scale_rows(l[0], l[1]), l[0]));
  }, {x, s});
}

TEST(GradCheck, SegmentSoftmax) {
  numeric::Rng rng(10);
  auto logits = random_tensor(6, 1, rng, -2, 2);
  auto w = random_tensor(6, 1, rng);
  const IndexVec seg{0, 0, 0, 1, 1, 2};
  gradcheck([&](const std::vector<Tensor>& l) {
    return sum_all(mul(segment_softmax(l[0], seg, 3), l[1]));
  }, {logits, w}, 1e-5, 1e-6);
}

TEST(GradCheck, LayerNorm) {
  numeric::Rng rng(11);
  auto x = random_tensor(3, 5, rng);
  auto gain = random_tensor(1, 5, rng, 0.5, 1.5);
  auto bias = random_tensor(1, 5, rng);
  gradcheck([](const std::vector<Tensor>& l) {
    const Tensor y = layer_norm(l[0], l[1], l[2]);
    return mean_all(mul(y, y));
  }, {x, gain, bias}, 1e-4, 1e-6);
}

TEST(GradCheck, Losses) {
  numeric::Rng rng(12);
  auto pred = random_tensor(3, 2, rng);
  const Tensor target = Tensor::from_data({0.1, 0.2, 0.3, 0.4, 0.5, 0.6}, 3, 2);
  gradcheck([&](const std::vector<Tensor>& l) { return mse_loss(l[0], target); }, {pred});
  gradcheck([&](const std::vector<Tensor>& l) { return l1_loss(l[0], target); }, {pred},
            1e-4, 1e-6);
}

}  // namespace
}  // namespace stco::tensor
