#include "src/tensor/tensor.hpp"

#include <gtest/gtest.h>

#include "src/tensor/ops.hpp"

namespace stco::tensor {
namespace {

TEST(Tensor, Construction) {
  const Tensor t = Tensor::full(2, 3, 1.5);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_DOUBLE_EQ(t(1, 2), 1.5);
  EXPECT_FALSE(t.requires_grad());
}

TEST(Tensor, FromDataSizeChecked) {
  EXPECT_THROW(Tensor::from_data({1, 2, 3}, 2, 2), std::invalid_argument);
  const Tensor t = Tensor::from_data({1, 2, 3, 4}, 2, 2);
  EXPECT_DOUBLE_EQ(t(1, 0), 3.0);
}

TEST(Tensor, ItemRequiresScalar) {
  EXPECT_THROW(Tensor::zeros(2, 2).item(), std::invalid_argument);
  EXPECT_DOUBLE_EQ(Tensor::scalar(3.5).item(), 3.5);
}

TEST(Tensor, BackwardRequiresScalar) {
  const Tensor t = Tensor::zeros(2, 2, true);
  EXPECT_THROW(t.backward(), std::invalid_argument);
}

TEST(Tensor, SimpleChainGradient) {
  // y = sum(3 * x); dy/dx = 3.
  Tensor x = Tensor::full(2, 2, 1.0, true);
  const Tensor y = sum_all(scale(x, 3.0));
  y.backward();
  for (double g : x.grad()) EXPECT_DOUBLE_EQ(g, 3.0);
}

TEST(Tensor, GradAccumulatesAcrossUses) {
  // y = sum(x + x) -> dy/dx = 2.
  Tensor x = Tensor::full(1, 3, 1.0, true);
  const Tensor y = sum_all(add(x, x));
  y.backward();
  for (double g : x.grad()) EXPECT_DOUBLE_EQ(g, 2.0);
}

TEST(Tensor, ZeroGradClears) {
  Tensor x = Tensor::full(1, 1, 2.0, true);
  sum_all(x).backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 1.0);
  x.zero_grad();
  EXPECT_DOUBLE_EQ(x.grad()[0], 0.0);
}

TEST(Tensor, NoGradLeafStaysUntouched) {
  Tensor x = Tensor::full(1, 1, 2.0, false);
  Tensor w = Tensor::full(1, 1, 3.0, true);
  const Tensor y = sum_all(mul(x, w));
  y.backward();
  EXPECT_DOUBLE_EQ(w.grad()[0], 2.0);
  EXPECT_DOUBLE_EQ(x.grad()[0], 0.0);
}

TEST(Tensor, DeepChainDoesNotOverflowStack) {
  // 2000-deep chain exercises the iterative DFS.
  Tensor x = Tensor::full(1, 4, 0.01, true);
  Tensor h = x;
  for (int i = 0; i < 2000; ++i) h = scale(h, 1.0005);
  sum_all(h).backward();
  EXPECT_GT(x.grad()[0], 1.0);  // (1.0005)^2000 ~ e
  EXPECT_LT(x.grad()[0], 4.0);
}

}  // namespace
}  // namespace stco::tensor
