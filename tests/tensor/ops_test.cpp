#include "src/tensor/ops.hpp"

#include <gtest/gtest.h>

namespace stco::tensor {
namespace {

TEST(Ops, MatmulForward) {
  const Tensor a = Tensor::from_data({1, 2, 3, 4}, 2, 2);
  const Tensor b = Tensor::from_data({5, 6, 7, 8}, 2, 2);
  const Tensor c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
  EXPECT_THROW(matmul(a, Tensor::zeros(3, 2)), std::invalid_argument);
}

TEST(Ops, AddBroadcastRow) {
  const Tensor a = Tensor::from_data({1, 2, 3, 4}, 2, 2);
  const Tensor bias = Tensor::from_data({10, 20}, 1, 2);
  const Tensor y = add(a, bias);
  EXPECT_DOUBLE_EQ(y(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(y(1, 1), 24.0);
}

TEST(Ops, AddBroadcastScalar) {
  const Tensor a = Tensor::from_data({1, 2}, 1, 2);
  const Tensor y = add(a, Tensor::scalar(5.0));
  EXPECT_DOUBLE_EQ(y(0, 1), 7.0);
}

TEST(Ops, IncompatibleShapesThrow) {
  EXPECT_THROW(add(Tensor::zeros(2, 2), Tensor::zeros(3, 3)), std::invalid_argument);
  EXPECT_THROW(mul(Tensor::zeros(2, 2), Tensor::zeros(2, 3)), std::invalid_argument);
}

TEST(Ops, ActivationsForward) {
  const Tensor x = Tensor::from_data({-1.0, 0.0, 2.0}, 1, 3);
  const Tensor r = relu(x);
  EXPECT_DOUBLE_EQ(r(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(r(0, 2), 2.0);
  const Tensor lr = leaky_relu(x, 0.1);
  EXPECT_DOUBLE_EQ(lr(0, 0), -0.1);
  const Tensor s = sigmoid(Tensor::scalar(0.0));
  EXPECT_DOUBLE_EQ(s.item(), 0.5);
  const Tensor e = elu(Tensor::scalar(-100.0));
  EXPECT_NEAR(e.item(), -1.0, 1e-9);
}

TEST(Ops, Reductions) {
  const Tensor x = Tensor::from_data({1, 2, 3, 4}, 2, 2);
  EXPECT_DOUBLE_EQ(sum_all(x).item(), 10.0);
  EXPECT_DOUBLE_EQ(mean_all(x).item(), 2.5);
  const Tensor mr = mean_rows(x);
  EXPECT_EQ(mr.rows(), 1u);
  EXPECT_DOUBLE_EQ(mr(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(mr(0, 1), 3.0);
}

TEST(Ops, SegmentMeanHandlesEmptySegments) {
  const Tensor x = Tensor::from_data({1, 2, 5, 6}, 2, 2);
  const Tensor m = segment_mean(x, {2, 2}, 3);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);  // empty segment
  EXPECT_DOUBLE_EQ(m(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(2, 1), 4.0);
  EXPECT_THROW(segment_mean(x, {0, 5}, 3), std::out_of_range);
}

TEST(Ops, ConcatColsForward) {
  const Tensor a = Tensor::from_data({1, 2}, 2, 1);
  const Tensor b = Tensor::from_data({3, 4, 5, 6}, 2, 2);
  const Tensor c = concat_cols({a, b});
  EXPECT_EQ(c.cols(), 3u);
  EXPECT_DOUBLE_EQ(c(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(1, 2), 6.0);
  EXPECT_THROW(concat_cols({a, Tensor::zeros(3, 1)}), std::invalid_argument);
}

TEST(Ops, GatherScatterForward) {
  const Tensor x = Tensor::from_data({1, 2, 3}, 3, 1);
  const Tensor g = gather_rows(x, {2, 0, 2});
  EXPECT_DOUBLE_EQ(g(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(g(2, 0), 3.0);
  const Tensor s = scatter_add_rows(g, {0, 0, 1}, 2);
  EXPECT_DOUBLE_EQ(s(0, 0), 4.0);  // 3 + 1
  EXPECT_DOUBLE_EQ(s(1, 0), 3.0);
  EXPECT_THROW(gather_rows(x, {5}), std::out_of_range);
}

TEST(Ops, SegmentSoftmaxNormalizesPerSegment) {
  const Tensor logits = Tensor::from_data({0.0, 0.0, 1.0, 3.0}, 4, 1);
  const Tensor y = segment_softmax(logits, {0, 0, 1, 1}, 2);
  EXPECT_NEAR(y(0, 0) + y(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(y(2, 0) + y(3, 0), 1.0, 1e-12);
  EXPECT_NEAR(y(0, 0), 0.5, 1e-12);
  EXPECT_GT(y(3, 0), y(2, 0));
}

TEST(Ops, SegmentSoftmaxStableForLargeLogits) {
  const Tensor logits = Tensor::from_data({1000.0, 999.0}, 2, 1);
  const Tensor y = segment_softmax(logits, {0, 0}, 1);
  EXPECT_NEAR(y(0, 0) + y(1, 0), 1.0, 1e-12);
  EXPECT_GT(y(0, 0), y(1, 0));
}

TEST(Ops, LayerNormNormalizesRows) {
  const Tensor x = Tensor::from_data({1, 2, 3, 10, 20, 30}, 2, 3);
  const Tensor y = layer_norm(x, Tensor::full(1, 3, 1.0), Tensor::zeros(1, 3));
  for (std::size_t r = 0; r < 2; ++r) {
    double m = 0;
    for (std::size_t c = 0; c < 3; ++c) m += y(r, c);
    EXPECT_NEAR(m / 3.0, 0.0, 1e-9);
  }
  // Equal relative spacing -> identical normalized rows (up to the eps
  // regularizer, which matters more for the small-variance row).
  EXPECT_NEAR(y(0, 0), y(1, 0), 1e-4);
}

TEST(Ops, MseLossValue) {
  const Tensor p = Tensor::from_data({1, 2}, 1, 2);
  const Tensor t = Tensor::from_data({0, 4}, 1, 2);
  EXPECT_DOUBLE_EQ(mse_loss(p, t).item(), (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(l1_loss(p, t).item(), (1.0 + 2.0) / 2.0);
}

TEST(Ops, ScaleRowsForward) {
  const Tensor a = Tensor::from_data({1, 2, 3, 4}, 2, 2);
  const Tensor s = Tensor::from_data({2, -1}, 2, 1);
  const Tensor y = scale_rows(a, s);
  EXPECT_DOUBLE_EQ(y(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(y(1, 0), -3.0);
  EXPECT_THROW(scale_rows(a, Tensor::zeros(2, 2)), std::invalid_argument);
}

}  // namespace
}  // namespace stco::tensor
