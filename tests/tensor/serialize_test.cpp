#include "src/tensor/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "src/gnn/models.hpp"
#include "src/numeric/rng.hpp"

namespace stco::tensor {
namespace {

std::vector<Tensor> make_params(std::uint64_t seed) {
  numeric::Rng rng(seed);
  std::vector<Tensor> ps;
  ps.push_back(Tensor::from_data({rng.normal(), rng.normal()}, 1, 2, true));
  std::vector<double> big(12);
  for (auto& v : big) v = rng.normal();
  ps.push_back(Tensor::from_data(std::move(big), 3, 4, true));
  return ps;
}

TEST(Serialize, RoundTripPreservesValues) {
  auto src = make_params(1);
  std::stringstream ss;
  save_parameters(ss, src);
  auto dst = make_params(2);  // different values, same shapes
  load_parameters(ss, dst);
  for (std::size_t i = 0; i < src.size(); ++i)
    EXPECT_EQ(src[i].value(), dst[i].value());
}

TEST(Serialize, BadMagicRejected) {
  std::stringstream ss;
  ss << "NOPE garbage";
  auto params = make_params(1);
  EXPECT_THROW(load_parameters(ss, params), std::runtime_error);
}

TEST(Serialize, CountMismatchRejected) {
  auto two = make_params(1);
  std::stringstream ss;
  save_parameters(ss, two);
  std::vector<Tensor> one = {two[0]};
  EXPECT_THROW(load_parameters(ss, one), std::runtime_error);
}

TEST(Serialize, ShapeMismatchRejected) {
  auto src = make_params(1);
  std::stringstream ss;
  save_parameters(ss, src);
  std::vector<Tensor> wrong = {Tensor::zeros(2, 1, true), Tensor::zeros(3, 4, true)};
  EXPECT_THROW(load_parameters(ss, wrong), std::runtime_error);
}

TEST(Serialize, TruncatedStreamRejected) {
  auto src = make_params(1);
  std::stringstream ss;
  save_parameters(ss, src);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  auto dst = make_params(2);
  EXPECT_THROW(load_parameters(cut, dst), std::runtime_error);
}

TEST(Serialize, TrainedGnnModelRoundTripsThroughFile) {
  // Save a model's parameters, perturb them, reload: predictions restored.
  numeric::Rng rng(7);
  gnn::RelGatConfig cfg = gnn::iv_predictor_config(4, 2, 8);
  gnn::RelGatModel model(cfg, rng);

  gnn::Graph g;
  g.num_nodes = 3;
  g.node_dim = 4;
  g.edge_dim = 2;
  g.edge_src = {0, 1};
  g.edge_dst = {1, 2};
  g.node_features.assign(12, 0.3);
  g.edge_features.assign(4, 0.1);

  const double before = model.forward(g).item();
  auto params = model.parameters();
  const std::string path = "/tmp/stco_weights.bin";
  save_parameters_file(path, params);
  for (auto& p : params)
    for (auto& v : p.value()) v += 1.0;  // wreck the weights
  EXPECT_NE(model.forward(g).item(), before);
  load_parameters_file(path, params);
  EXPECT_DOUBLE_EQ(model.forward(g).item(), before);
}

}  // namespace
}  // namespace stco::tensor
