#include "src/stco/report.hpp"

#include <gtest/gtest.h>

#include <fstream>

namespace stco {
namespace {

RunReportInputs sample_inputs() {
  RunReportInputs in;
  in.benchmark = "s298";
  in.fast_path = true;
  in.search.best_point = {tcad::SemiconductorKind::kCnt, 3.0, 0.8, 1.2e-4};
  in.search.best_cost = 2.31;
  in.search.unique_evaluations = 14;
  in.search.best_cost_history = {3.0, 2.8, 2.5, 2.31, 2.31};
  in.best_ppa.min_period = 1.2e-6;
  in.best_ppa.fmax = 1.0 / 1.2e-6;
  in.best_ppa.dynamic_power = 8e-6;
  in.best_ppa.leakage_power = 5e-7;
  in.best_ppa.area = 1.3e-7;
  in.best_ppa.num_gates = 119;
  in.best_ppa.num_ffs = 14;
  in.obs.set_gauge("stco.library_seconds", 0.2);
  in.obs.set_gauge("stco.sta_seconds", 0.01);
  PpaPoint p;
  p.tech = in.search.best_point;
  p.delay = 1.2e-6;
  p.power = 8.5e-6;
  p.area = 1.3e-7;
  in.pareto.front = {p};
  return in;
}

TEST(RunReport, ContainsAllSections) {
  const std::string md = run_report_markdown(sample_inputs());
  EXPECT_NE(md.find("# STCO exploration report — s298"), std::string::npos);
  EXPECT_NE(md.find("GNN fast path"), std::string::npos);
  EXPECT_NE(md.find("## Selected technology point"), std::string::npos);
  EXPECT_NE(md.find("## PPA at the selected point"), std::string::npos);
  EXPECT_NE(md.find("## Search"), std::string::npos);
  EXPECT_NE(md.find("## Pareto front"), std::string::npos);
  EXPECT_NE(md.find("## Runtime accounting"), std::string::npos);
  EXPECT_NE(md.find("13.6"), std::string::npos);  // s298's calibrated speedup
}

TEST(RunReport, OmitsEmptyParetoSection) {
  auto in = sample_inputs();
  in.pareto.front.clear();
  const std::string md = run_report_markdown(in);
  EXPECT_EQ(md.find("## Pareto front"), std::string::npos);
}

TEST(RunReport, UnknownBenchmarkSkipsRuntimeSection) {
  auto in = sample_inputs();
  in.benchmark = "custom_chip";
  const std::string md = run_report_markdown(in);
  EXPECT_EQ(md.find("## Runtime accounting"), std::string::npos);
  EXPECT_NE(md.find("custom_chip"), std::string::npos);
}

TEST(RunReport, RobustnessSectionAlwaysPresent) {
  // Zero counters (clean run): the section still renders as evidence.
  const std::string clean = run_report_markdown(sample_inputs());
  EXPECT_NE(clean.find("## Solver robustness"), std::string::npos);
  EXPECT_NE(clean.find("infeasible technology evaluations: 0"), std::string::npos);

  // Populate through the StcoTiming/RobustnessStats -> Snapshot bridge, the
  // same path StcoEngine::obs_snapshot() takes.
  auto in = sample_inputs();
  StcoTiming timing;
  timing.library_seconds = 0.2;
  timing.sta_seconds = 0.01;
  numeric::RobustnessStats rb;
  rb.attempts = 12;
  rb.direct_success = 9;
  rb.recovered = 2;
  rb.failures = 1;
  rb.gmin_retries = 3;
  in.obs = make_run_snapshot(timing, rb, exec::ContextStats{},
                             /*infeasible_evaluations=*/2);
  const std::string md = run_report_markdown(in);
  EXPECT_NE(md.find("## Solver robustness"), std::string::npos);
  EXPECT_NE(md.find("12 attempts"), std::string::npos);
  EXPECT_NE(md.find("gmin 3"), std::string::npos);
  EXPECT_NE(md.find("infeasible technology evaluations: 2"), std::string::npos);
}

TEST(RunReport, AttributionTreeFromSpanStats) {
  // No span stats -> section omitted entirely.
  const std::string without = run_report_markdown(sample_inputs());
  EXPECT_EQ(without.find("## Where did the time go"), std::string::npos);

  // Hand-populated span aggregates (the value-type path, so this also
  // holds with STCO_OBS=OFF): grouped by layer, heaviest layer first.
  auto in = sample_inputs();
  in.obs.spans["tcad.poisson.solve"] = {40, 800'000'000, 30'000'000};
  in.obs.spans["tcad.dd.solve"] = {10, 200'000'000, 25'000'000};
  in.obs.spans["gnn.epoch"] = {60, 90'000'000, 2'000'000};
  const std::string md = run_report_markdown(in);
  EXPECT_NE(md.find("## Where did the time go"), std::string::npos);
  const auto tcad_pos = md.find("- tcad — 1000.00 ms");
  const auto gnn_pos = md.find("- gnn — 90.00 ms");
  ASSERT_NE(tcad_pos, std::string::npos);
  ASSERT_NE(gnn_pos, std::string::npos);
  EXPECT_LT(tcad_pos, gnn_pos);  // heavier layer renders first
  EXPECT_NE(md.find("tcad.poisson.solve: 800.00 ms over 40 calls"),
            std::string::npos);
  EXPECT_NE(md.find("gnn.epoch: 90.00 ms over 60 calls (max 2.00 ms)"),
            std::string::npos);
}

TEST(RunReport, ExecutionStatsLine) {
  // Default inputs carry a serial-inline context.
  const std::string serial = run_report_markdown(sample_inputs());
  EXPECT_NE(serial.find("- execution: serial inline"), std::string::npos);

  auto in = sample_inputs();
  in.obs.set_counter("exec.threads", 8);
  in.obs.set_counter("exec.tasks_run", 420);
  in.obs.set_counter("exec.steals", 17);
  in.obs.set_counter("exec.max_queue_depth", 9);
  in.obs.set_counter("exec.parallel_regions", 12);
  const std::string md = run_report_markdown(in);
  EXPECT_NE(md.find("8 worker threads"), std::string::npos);
  EXPECT_NE(md.find("420 tasks"), std::string::npos);
  EXPECT_NE(md.find("17 steals"), std::string::npos);
}

TEST(RunReport, WritesFile) {
  write_run_report_file("/tmp/stco_report.md", sample_inputs());
  std::ifstream f("/tmp/stco_report.md");
  ASSERT_TRUE(f.good());
  std::string first;
  std::getline(f, first);
  EXPECT_NE(first.find("# STCO exploration report"), std::string::npos);
  EXPECT_THROW(write_run_report_file("/no/dir/x.md", sample_inputs()),
               std::runtime_error);
}

}  // namespace
}  // namespace stco
