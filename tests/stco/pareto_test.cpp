#include "src/stco/pareto.hpp"

#include <gtest/gtest.h>

namespace stco {
namespace {

PpaPoint pt(double d, double p, double a) {
  PpaPoint x;
  x.delay = d;
  x.power = p;
  x.area = a;
  return x;
}

TEST(Pareto, DominationRules) {
  EXPECT_TRUE(pt(1, 1, 1).dominates(pt(2, 2, 2)));
  EXPECT_TRUE(pt(1, 1, 1).dominates(pt(1, 1, 2)));
  EXPECT_FALSE(pt(1, 1, 1).dominates(pt(1, 1, 1)));  // equal: no strict gain
  EXPECT_FALSE(pt(1, 3, 1).dominates(pt(2, 2, 2)));  // trade-off
}

TEST(Pareto, ExtractsNonDominatedSet) {
  const std::vector<PpaPoint> pts = {
      pt(1, 3, 1), pt(2, 2, 1), pt(3, 1, 1),  // a front in delay/power
      pt(3, 3, 1),                             // dominated by pt(2,2,1)
      pt(0.5, 5, 1),                           // fastest: on the front
  };
  const auto front = pareto_front(pts);
  ASSERT_EQ(front.size(), 4u);
  // Sorted by delay.
  for (std::size_t i = 1; i < front.size(); ++i)
    EXPECT_LE(front[i - 1].delay, front[i].delay);
  for (const auto& f : front) EXPECT_FALSE(f.delay == 3.0 && f.power == 3.0);
}

TEST(Pareto, SinglePointIsItsOwnFront) {
  const auto front = pareto_front({pt(1, 1, 1)});
  ASSERT_EQ(front.size(), 1u);
}

TEST(Pareto, DuplicateObjectivesCollapse) {
  const auto front = pareto_front({pt(1, 2, 3), pt(1, 2, 3), pt(1, 2, 3)});
  EXPECT_EQ(front.size(), 1u);
}

TEST(Pareto, SweepOverSyntheticEvaluator) {
  charlib::CornerRanges r;
  const TechGrid grid(r, 3);
  // Synthetic PPA: delay falls with vdd, power rises with vdd — a classic
  // trade-off, so the front should span multiple vdd values.
  auto eval = [](const compact::TechnologyPoint& t) {
    flow::StaReport rep;
    rep.min_period = 1.0 / t.vdd;
    rep.total_power = t.vdd * t.vdd;
    rep.area = 1.0;
    return rep;
  };
  const auto sweep = sweep_pareto(grid, eval);
  EXPECT_EQ(sweep.all.size(), grid.num_states());
  EXPECT_EQ(sweep.front.size(), 3u);  // one per distinct vdd
  // Sorted by delay ascending; along the front, slower points must be the
  // cheaper ones (that's what makes them non-dominated).
  for (std::size_t i = 1; i < sweep.front.size(); ++i) {
    EXPECT_GT(sweep.front[i].delay, sweep.front[i - 1].delay);
    EXPECT_LT(sweep.front[i].power, sweep.front[i - 1].power);
  }
}

}  // namespace
}  // namespace stco
