#include "src/stco/loop.hpp"

#include <gtest/gtest.h>

#include "src/stco/runtime_model.hpp"

namespace stco {
namespace {

TEST(RuntimeModel, Table1ReferenceComplete) {
  ASSERT_EQ(table1_reference().size(), 10u);
  for (const auto& r : table1_reference()) {
    EXPECT_GT(r.system_evaluation, 0.0);
    EXPECT_GT(r.speedup, 1.0);
    // Internal consistency of the paper's own numbers.
    EXPECT_NEAR(r.traditional / r.ours, r.speedup, 0.15);
  }
}

TEST(RuntimeModel, RowMatchesPaperWithDefaultConstants) {
  for (const auto& ref : table1_reference()) {
    const auto row = table1_row(ref.benchmark);
    EXPECT_NEAR(row.traditional, ref.traditional, 1.0) << ref.benchmark;
    EXPECT_NEAR(row.ours, ref.ours, 20.0) << ref.benchmark;
    EXPECT_NEAR(row.speedup, ref.speedup, 0.6) << ref.benchmark;
  }
}

TEST(RuntimeModel, SpeedupShrinksWithSystemEvaluationShare) {
  // Table I's core observation: small benchmarks (tech loop dominates) see
  // ~14x; big benchmarks (system evaluation dominates) see ~2x.
  const auto small = table1_row("s386");
  const auto big = table1_row("Darkriscv");
  EXPECT_GT(small.speedup, 3.0 * big.speedup);
}

TEST(RuntimeModel, MeasuredOverridesApply) {
  const auto row = table1_row("s298", {}, 1.0, 0.5, 2.0);
  EXPECT_NEAR(row.ours, 142.0 + 3.5, 1e-9);
  EXPECT_THROW(system_evaluation_seconds("bogus"), std::invalid_argument);
}

TEST(StcoEngine, SpicePathEvaluatesBenchmark) {
  StcoConfig cfg;
  cfg.benchmark = "s298";
  StcoEngine engine(cfg, SpiceBackend{});
  const TechGrid grid(cfg.ranges, cfg.grid_n);
  const auto rep = engine.evaluate(grid.point(0));
  EXPECT_GT(rep.critical_path, 0.0);
  EXPECT_GT(rep.total_power, 0.0);
  EXPECT_EQ(engine.timing().evaluations.load(), 1u);
  EXPECT_GT(engine.timing().library_seconds.load(), 0.0);
}

TEST(StcoEngine, CostIsFiniteAndCalibrated) {
  StcoConfig cfg;
  cfg.benchmark = "s298";
  StcoEngine engine(cfg, SpiceBackend{});
  const TechGrid grid(cfg.ranges, cfg.grid_n);
  const double c = engine.cost(grid.point(grid.num_states() / 2));
  // At the calibration point each normalized term is ~1.
  EXPECT_GT(c, 0.5);
  EXPECT_LT(c, 5.0);
}

TEST(StcoEngine, VddKnobTradesSpeedForPower) {
  StcoConfig cfg;
  cfg.benchmark = "s386";
  StcoEngine engine(cfg, SpiceBackend{});
  compact::TechnologyPoint lo{tcad::SemiconductorKind::kCnt, cfg.ranges.vdd_min,
                              0.8, 1.2e-4};
  compact::TechnologyPoint hi = lo;
  hi.vdd = cfg.ranges.vdd_max;
  const auto rl = engine.evaluate(lo);
  const auto rh = engine.evaluate(hi);
  EXPECT_LT(rh.critical_path, rl.critical_path);   // faster at high vdd
  EXPECT_GT(rh.dynamic_power, rl.dynamic_power);   // but more power
}

TEST(StcoEngine, RlSearchImprovesOverWorstCorner) {
  StcoConfig cfg;
  cfg.benchmark = "s298";
  cfg.grid_n = 3;
  cfg.rl.episodes = 3;
  cfg.rl.steps_per_episode = 6;
  StcoEngine engine(cfg, SpiceBackend{});
  const auto res = engine.optimize();
  // The found best must not be worse than every corner.
  const TechGrid grid(cfg.ranges, cfg.grid_n);
  double worst = 0.0;
  for (std::size_t s : {std::size_t{0}, grid.num_states() - 1})
    worst = std::max(worst, engine.cost(grid.point(s)));
  EXPECT_LE(res.best_cost, worst);
  EXPECT_GT(res.unique_evaluations, 2u);
}


TEST(StcoEngine, InjectedLibraryFailureDegradesToFinitePenalty) {
  StcoConfig cfg;
  cfg.benchmark = "s298";
  cfg.grid_n = 3;
  cfg.rl.episodes = 2;
  cfg.rl.steps_per_episode = 4;
  // Fault injection through the library hook: every vdd_min technology
  // point "loses" its characterization, as if the sims died after retries.
  const double bad_vdd = cfg.ranges.vdd_min;
  cfg.library_hook = [bad_vdd](flow::TimingLibrary& lib) {
    if (lib.tech.vdd <= bad_vdd + 1e-12) lib.complete = false;
  };
  StcoEngine engine(cfg, SpiceBackend{});

  compact::TechnologyPoint bad{tcad::SemiconductorKind::kCnt, bad_vdd, 0.8, 1.2e-4};
  const auto rep = engine.evaluate(bad);
  EXPECT_TRUE(rep.infeasible);
  EXPECT_GE(engine.infeasible_evaluations(), 1u);

  // The infeasible point maps to the finite penalty — never NaN into the
  // RL reward.
  const double c = engine.cost(bad);
  EXPECT_TRUE(std::isfinite(c));
  EXPECT_EQ(c, cfg.infeasible_penalty);

  // Feasible points are unaffected and stay below the penalty.
  compact::TechnologyPoint good = bad;
  good.vdd = cfg.ranges.vdd_max;
  const auto rep_good = engine.evaluate(good);
  EXPECT_FALSE(rep_good.infeasible);
  EXPECT_LT(engine.cost(good), cfg.infeasible_penalty);

  // The optimizer terminates normally over the partially-infeasible grid
  // and settles on a finite cost (i.e. a feasible region).
  const auto res = engine.optimize();
  EXPECT_TRUE(std::isfinite(res.best_cost));
  EXPECT_LT(res.best_cost, cfg.infeasible_penalty);

  // The SPICE path actually ran solvers, so the aggregated counters moved.
  EXPECT_GT(engine.robustness().attempts, 0u);
}

/// Minimal trained charlib model, built once for the suite (normalization +
/// a few epochs: inference cost is what the fast path measures, and
/// predictions stay finite/positive).
charlib::CellCharModel& tiny_model() {
  static charlib::CellCharModel model = [] {
    charlib::CellCharModelConfig mcfg;
    mcfg.train.epochs = 3;
    charlib::CellCharModel m(mcfg);
    charlib::DatasetOptions dopts;
    dopts.cell_names = {"INV", "NAND2"};
    dopts.input_slews = {15e-9};
    dopts.output_loads = {40e-15};
    charlib::CornerRanges r;
    const auto tiny = charlib::build_charlib_dataset(charlib::corner_grid(r, 1), dopts);
    m.fit_normalization(tiny);
    m.train(tiny);
    return m;
  }();
  return model;
}

TEST(StcoEngine, GnnFastPathIsFasterThanSpicePath) {
  charlib::CellCharModel& model = tiny_model();

  StcoConfig cfg;
  cfg.benchmark = "s298";
  const TechGrid grid(cfg.ranges, cfg.grid_n);

  StcoEngine fast(cfg, GnnBackend{model});
  EXPECT_TRUE(fast.fast_path());
  const auto rep = fast.evaluate(grid.point(0));
  EXPECT_GT(rep.critical_path, 0.0);
  EXPECT_TRUE(std::isfinite(rep.total_power));

  StcoEngine slow(cfg, SpiceBackend{});
  (void)slow.evaluate(grid.point(0));
  EXPECT_LT(fast.timing().library_seconds.load(),
            0.2 * slow.timing().library_seconds.load());
}

TEST(StcoEngine, ParallelSearchMatchesSerial) {
  charlib::CellCharModel& model = tiny_model();
  StcoConfig cfg;
  cfg.benchmark = "s298";
  cfg.grid_n = 3;
  cfg.rl.episodes = 2;
  cfg.rl.steps_per_episode = 4;

  // Costs are deterministic and memoized, so concurrent candidate prefetch
  // must leave the search trajectory — not just the final point — unchanged.
  StcoEngine serial(cfg, GnnBackend{model});
  const auto a = serial.optimize();
  exec::Context ctx(4);
  StcoEngine par(cfg, GnnBackend{model}, ctx);
  const auto b = par.optimize();
  EXPECT_EQ(a.best_state, b.best_state);
  EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
  EXPECT_EQ(a.unique_evaluations, b.unique_evaluations);
  EXPECT_EQ(a.best_cost_history, b.best_cost_history);

  const auto ra = serial.optimize_random(6);
  const auto rb = par.optimize_random(6);
  EXPECT_EQ(ra.best_state, rb.best_state);
  EXPECT_DOUBLE_EQ(ra.best_cost, rb.best_cost);
  EXPECT_EQ(ra.best_cost_history, rb.best_cost_history);

  // The scheduler actually ran tasks for the parallel engine.
  EXPECT_GT(ctx.stats().tasks_run, 0u);
}

}  // namespace
}  // namespace stco
