#include "src/stco/rl.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stco {
namespace {

charlib::CornerRanges ranges() { return {}; }

TEST(TechGrid, IndexRoundTrip) {
  const TechGrid g(ranges(), 4);
  EXPECT_EQ(g.num_states(), 64u);
  for (std::size_t s = 0; s < g.num_states(); ++s) {
    std::size_t iv, it, ic;
    g.indices_of(s, iv, it, ic);
    EXPECT_EQ(g.state_of(iv, it, ic), s);
  }
  EXPECT_THROW(TechGrid(ranges(), 1), std::invalid_argument);
}

TEST(TechGrid, CornersSpanRanges) {
  const charlib::CornerRanges r = ranges();
  const TechGrid g(r, 3);
  const auto p0 = g.point(0);
  const auto pl = g.point(g.num_states() - 1);
  EXPECT_DOUBLE_EQ(p0.vdd, r.vdd_min);
  EXPECT_DOUBLE_EQ(p0.vth, r.vth_min);
  EXPECT_DOUBLE_EQ(p0.cox, r.cox_min);
  EXPECT_DOUBLE_EQ(pl.vdd, r.vdd_max);
  EXPECT_DOUBLE_EQ(pl.vth, r.vth_max);
  EXPECT_DOUBLE_EQ(pl.cox, r.cox_max);
}

/// Smooth synthetic cost with a unique minimum at a known grid point.
double bowl_cost(const compact::TechnologyPoint& p) {
  const double dv = (p.vdd - 3.0) / 1.2;
  const double dt = (p.vth - 0.73) / 0.4;
  const double dc = (p.cox - 1.4e-4) / 0.7e-4;
  return dv * dv + dt * dt + dc * dc;
}

TEST(QLearning, FindsNearOptimalPointOnBowl) {
  const TechGrid g(ranges(), 5);
  RlConfig cfg;
  cfg.episodes = 20;
  cfg.steps_per_episode = 30;
  const auto res = q_learning_search(g, bowl_cost, cfg);
  // Exhaustive minimum for reference.
  double best = 1e300;
  for (std::size_t s = 0; s < g.num_states(); ++s)
    best = std::min(best, bowl_cost(g.point(s)));
  EXPECT_LT(res.best_cost, best + 0.35);  // within a grid cell or two
  EXPECT_GT(res.unique_evaluations, 10u);
  EXPECT_LE(res.unique_evaluations, g.num_states());
}

TEST(QLearning, BestCostHistoryIsNonIncreasing) {
  const TechGrid g(ranges(), 4);
  const auto res = q_learning_search(g, bowl_cost);
  for (std::size_t i = 1; i < res.best_cost_history.size(); ++i)
    EXPECT_LE(res.best_cost_history[i], res.best_cost_history[i - 1] + 1e-12);
}

TEST(QLearning, DeterministicForSeed) {
  const TechGrid g(ranges(), 4);
  RlConfig cfg;
  cfg.seed = 77;
  const auto a = q_learning_search(g, bowl_cost, cfg);
  const auto b = q_learning_search(g, bowl_cost, cfg);
  EXPECT_EQ(a.best_state, b.best_state);
  EXPECT_DOUBLE_EQ(a.best_cost, b.best_cost);
}

TEST(RandomSearch, RespectsBudgetAndFindsDecentPoint) {
  const TechGrid g(ranges(), 5);
  const auto res = random_search(g, bowl_cost, 40);
  EXPECT_LE(res.unique_evaluations, 40u);
  EXPECT_LT(res.best_cost, 1.5);
  EXPECT_EQ(res.best_cost_history.size(), 40u);
}

TEST(QLearning, BeatsRandomSearchOnAverage) {
  // With an equal *unique evaluation* budget the guided walk should match
  // or beat random sampling in aggregate across seeds.
  const TechGrid g(ranges(), 6);
  double rl_total = 0.0, rnd_total = 0.0;
  for (std::size_t t = 0; t < 8; ++t) {
    RlConfig cfg;
    cfg.seed = 100 + t;
    cfg.episodes = 10;
    cfg.steps_per_episode = 16;
    const auto rl = q_learning_search(g, bowl_cost, cfg);
    const auto rnd = random_search(g, bowl_cost, rl.unique_evaluations, 200 + t);
    rl_total += rl.best_cost;
    rnd_total += rnd.best_cost;
  }
  EXPECT_LE(rl_total, rnd_total + 0.25);
}

}  // namespace
}  // namespace stco
