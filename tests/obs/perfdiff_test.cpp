// stco-perfdiff core tests: JSON flattening, direction heuristics, the
// diff/regression gate (identical inputs clean, degraded latency keys
// flagged past the threshold), telemetry-stream validation, and the CLI
// exit-code contract driven in-process through run_cli.

#include "tools/stco-perfdiff/perfdiff.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/obs.hpp"
#include "src/obs/telemetry.hpp"

namespace stco::perfdiff {
namespace {

namespace fs = std::filesystem;

class PerfdiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path("perfdiff_scratch") /
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write(const char* name, const std::string& body) {
    const std::string p = (dir_ / name).string();
    std::ofstream out(p, std::ios::binary);
    out << body;
    return p;
  }

  int cli(std::vector<const char*> argv) {
    argv.insert(argv.begin(), "stco-perfdiff");
    std::ostringstream out, err;
    return run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
  }

  fs::path dir_;
};

// --- direction heuristics ------------------------------------------------

TEST(KeyDirection, LowerIsBetterFamilies) {
  EXPECT_EQ(key_direction("latency.0.plan_us"), Direction::kLowerIsBetter);
  EXPECT_EQ(key_direction("gnn.infer.arena_high_water_bytes"),
            Direction::kLowerIsBetter);
  EXPECT_EQ(key_direction("solver.fallbacks"), Direction::kLowerIsBetter);
  EXPECT_EQ(key_direction("persist.corrupt_artifacts"),
            Direction::kLowerIsBetter);
  EXPECT_EQ(key_direction("cells.characterize_seconds"),
            Direction::kLowerIsBetter);
}

TEST(KeyDirection, HigherIsBetterFamilies) {
  EXPECT_EQ(key_direction("throughput.graphs_per_s"),
            Direction::kHigherIsBetter);
  EXPECT_EQ(key_direction("batch.speedup"), Direction::kHigherIsBetter);
  EXPECT_EQ(key_direction("stco.cost_cache.hits"), Direction::kHigherIsBetter);
}

TEST(KeyDirection, UnknownKeysAreInformational) {
  EXPECT_EQ(key_direction("config.threads"), Direction::kInformational);
  EXPECT_EQ(key_direction("exec.parallel_regions"),
            Direction::kInformational);
}

// --- flattening ----------------------------------------------------------

TEST(Flatten, NestedObjectsArraysBools) {
  const auto v = obs::parse_json(
      R"({"a":{"b":1.5,"c":[2,3]},"flag":true,"name":"skip","n":null})");
  ASSERT_TRUE(v.has_value());
  const auto flat = flatten_numeric(*v);
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_DOUBLE_EQ(flat.at("a.b"), 1.5);
  EXPECT_DOUBLE_EQ(flat.at("a.c.0"), 2.0);
  EXPECT_DOUBLE_EQ(flat.at("a.c.1"), 3.0);
  EXPECT_DOUBLE_EQ(flat.at("flag"), 1.0);
  EXPECT_EQ(flat.count("name"), 0u);
  EXPECT_EQ(flat.count("n"), 0u);
}

// --- diff / regression gate ---------------------------------------------

PerfInput make_input(std::map<std::string, double> values) {
  PerfInput in;
  in.values = std::move(values);
  in.ok = true;
  return in;
}

TEST(Diff, IdenticalInputsHaveNoRegressions) {
  const auto a = make_input({{"solver.latency_us", 120.0},
                             {"throughput.graphs_per_s", 50.0}});
  const DiffResult res = diff(a, a, DiffOptions{});
  EXPECT_EQ(res.regressions, 0u);
  ASSERT_EQ(res.rows.size(), 2u);
  for (const auto& row : res.rows) {
    EXPECT_DOUBLE_EQ(row.rel, 0.0);
    EXPECT_FALSE(row.regressed);
  }
}

TEST(Diff, DegradedLatencyKeyPastThresholdRegresses) {
  const auto a = make_input({{"solver.latency_us", 100.0}});
  const auto b = make_input({{"solver.latency_us", 125.0}});
  DiffOptions opts;
  opts.threshold = 0.10;
  const DiffResult res = diff(a, b, opts);
  ASSERT_EQ(res.rows.size(), 1u);
  EXPECT_TRUE(res.rows[0].regressed);
  EXPECT_NEAR(res.rows[0].rel, 0.25, 1e-12);
  EXPECT_EQ(res.regressions, 1u);
  // The same movement inside the threshold is not a regression.
  const auto c = make_input({{"solver.latency_us", 105.0}});
  EXPECT_EQ(diff(a, c, opts).regressions, 0u);
  // An improvement is never a regression.
  const auto d = make_input({{"solver.latency_us", 50.0}});
  EXPECT_EQ(diff(a, d, opts).regressions, 0u);
}

TEST(Diff, HigherIsBetterKeyRegressesOnDrop) {
  const auto a = make_input({{"throughput.graphs_per_s", 100.0}});
  const auto b = make_input({{"throughput.graphs_per_s", 60.0}});
  const DiffResult res = diff(a, b, DiffOptions{});
  EXPECT_EQ(res.regressions, 1u);
}

TEST(Diff, InformationalKeysNeverGate) {
  const auto a = make_input({{"config.threads", 4.0}});
  const auto b = make_input({{"config.threads", 1.0}});
  EXPECT_EQ(diff(a, b, DiffOptions{}).regressions, 0u);
}

TEST(Diff, GatesRestrictWhichKeysCount) {
  const auto a = make_input(
      {{"solver.latency_us", 100.0}, {"gnn.infer.batch_us", 100.0}});
  const auto b = make_input(
      {{"solver.latency_us", 200.0}, {"gnn.infer.batch_us", 200.0}});
  DiffOptions opts;
  opts.gates = {"gnn."};
  const DiffResult res = diff(a, b, opts);
  EXPECT_EQ(res.regressions, 1u);
  for (const auto& row : res.rows)
    EXPECT_EQ(row.regressed, row.key.rfind("gnn.", 0) == 0);
}

TEST(Diff, DisjointKeysReportedNotGated) {
  const auto a = make_input({{"old.latency_us", 10.0}});
  const auto b = make_input({{"new.latency_us", 10.0}});
  const DiffResult res = diff(a, b, DiffOptions{});
  EXPECT_TRUE(res.rows.empty());
  ASSERT_EQ(res.only_a.size(), 1u);
  ASSERT_EQ(res.only_b.size(), 1u);
  EXPECT_EQ(res.regressions, 0u);
}

TEST(Diff, TinyBaselineIsNoiseNotRegression) {
  const auto a = make_input({{"solver.latency_us", 0.0}});
  const auto b = make_input({{"solver.latency_us", 5.0}});
  EXPECT_EQ(diff(a, b, DiffOptions{}).regressions, 0u);
}

// --- file loading --------------------------------------------------------

TEST_F(PerfdiffTest, LoadsPlainJsonDocument) {
  const auto p = write("bench.json", R"({"latency":{"plan_us":42.0}})");
  const PerfInput in = load_perf_file(p);
  ASSERT_TRUE(in.ok) << in.error;
  EXPECT_FALSE(in.is_telemetry);
  EXPECT_DOUBLE_EQ(in.values.at("latency.plan_us"), 42.0);
}

TEST_F(PerfdiffTest, LoadsTelemetryStreamAsMergedSnapshot) {
  const auto p = write(
      "t.jsonl",
      R"({"telemetry_schema_version":1,"seq":0,"t_ns":1,"kind":"start","obs":{"obs_schema_version":2,"counters":{"test.pd.c":3}}})"
      "\n"
      R"({"telemetry_schema_version":1,"seq":1,"t_ns":2,"kind":"final","obs":{"obs_schema_version":2,"counters":{"test.pd.c":4}}})"
      "\n");
  const PerfInput in = load_perf_file(p);
  ASSERT_TRUE(in.ok) << in.error;
  EXPECT_TRUE(in.is_telemetry);
  EXPECT_DOUBLE_EQ(in.values.at("counters.test.pd.c"), 7.0);  // 3 + 4 merged
}

TEST_F(PerfdiffTest, MissingFileReportsError) {
  const PerfInput in = load_perf_file((dir_ / "absent.json").string());
  EXPECT_FALSE(in.ok);
  EXPECT_FALSE(in.error.empty());
}

// --- telemetry validation ------------------------------------------------

TEST_F(PerfdiffTest, ValidatesSessionProducedStream) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "built with STCO_OBS=OFF";
  const std::string file = (dir_ / "live.jsonl").string();
  obs::reset_progress();
  {
    obs::TelemetrySession session({file, /*interval_ms=*/60'000});
    obs::ProgressTask& p = obs::progress("test.pd.items");
    p.reset();
    p.add_work(4);
    p.advance(2);
    session.flush_now();
    p.advance(2);
    session.flush_now();
  }
  const ValidateResult res = validate_telemetry(file);
  EXPECT_TRUE(res.ok) << (res.errors.empty() ? "" : res.errors.front());
  EXPECT_GE(res.records, 3u);
  EXPECT_FALSE(res.truncated_tail);
}

TEST_F(PerfdiffTest, ValidateFlagsNonMonotoneProgress) {
  const auto p = write(
      "bad.jsonl",
      R"({"telemetry_schema_version":1,"seq":0,"t_ns":1,"kind":"start","obs":{"obs_schema_version":2,"progress":{"test.pd.p":{"done":5,"total":8,"rate_per_sec":1.0,"eta_seconds":3.0}}}})"
      "\n"
      R"({"telemetry_schema_version":1,"seq":1,"t_ns":2,"kind":"final","obs":{"obs_schema_version":2,"progress":{"test.pd.p":{"done":2,"total":8,"rate_per_sec":1.0,"eta_seconds":6.0}}}})"
      "\n");
  const ValidateResult res = validate_telemetry(p);
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.errors.empty());
}

TEST_F(PerfdiffTest, ValidateFlagsNonIncreasingSeqWithinSession) {
  const auto p = write(
      "seq.jsonl",
      R"({"telemetry_schema_version":1,"seq":3,"t_ns":1,"kind":"start","obs":{"obs_schema_version":2}})"
      "\n"
      R"({"telemetry_schema_version":1,"seq":3,"t_ns":2,"kind":"sample","obs":{"obs_schema_version":2}})"
      "\n");
  EXPECT_FALSE(validate_telemetry(p).ok);
}

TEST_F(PerfdiffTest, ValidateAllowsSeqRestartForResumedRuns) {
  // A resumed run appends a second session: seq restarts at 0 and progress
  // done-counts restart too (the new process counts its own work from
  // zero) — legal at the "start" boundary, monotone within each session.
  const auto p = write(
      "resume.jsonl",
      R"({"telemetry_schema_version":1,"seq":0,"t_ns":1,"kind":"start","obs":{"obs_schema_version":2,"progress":{"test.pd.p":{"done":5,"total":8,"rate_per_sec":1.0,"eta_seconds":3.0}}}})"
      "\n"
      R"({"telemetry_schema_version":1,"seq":1,"t_ns":2,"kind":"final","obs":{"obs_schema_version":2,"progress":{"test.pd.p":{"done":6,"total":8,"rate_per_sec":1.0,"eta_seconds":2.0}}}})"
      "\n"
      R"({"telemetry_schema_version":1,"seq":0,"t_ns":3,"kind":"start","obs":{"obs_schema_version":2,"progress":{"test.pd.p":{"done":2,"total":8,"rate_per_sec":1.0,"eta_seconds":6.0}}}})"
      "\n"
      R"({"telemetry_schema_version":1,"seq":1,"t_ns":4,"kind":"final","obs":{"obs_schema_version":2,"progress":{"test.pd.p":{"done":8,"total":8,"rate_per_sec":1.0,"eta_seconds":0.0}}}})"
      "\n");
  const ValidateResult res = validate_telemetry(p);
  EXPECT_TRUE(res.ok) << (res.errors.empty() ? "" : res.errors.front());
  EXPECT_EQ(res.records, 4u);
}

// --- CLI exit codes ------------------------------------------------------

TEST_F(PerfdiffTest, CliUsageErrorsExitTwo) {
  EXPECT_EQ(cli({}), 2);
  EXPECT_EQ(cli({"only-one.json"}), 2);
  EXPECT_EQ(cli({"a.json", "b.json", "--bogus-flag"}), 2);
}

TEST_F(PerfdiffTest, CliIdenticalFilesExitZero) {
  const auto a = write("a.json", R"({"solver":{"latency_us":100.0}})");
  const auto b = write("b.json", R"({"solver":{"latency_us":100.0}})");
  EXPECT_EQ(cli({a.c_str(), b.c_str()}), 0);
  EXPECT_EQ(cli({a.c_str(), a.c_str()}), 0);
}

TEST_F(PerfdiffTest, CliDegradedLatencyExitsOne) {
  const auto a = write("a.json", R"({"solver":{"latency_us":100.0}})");
  const auto b = write("b.json", R"({"solver":{"latency_us":150.0}})");
  EXPECT_EQ(cli({a.c_str(), b.c_str()}), 1);
  // A generous threshold waves the same movement through.
  EXPECT_EQ(cli({a.c_str(), b.c_str(), "--threshold=0.9"}), 0);
}

TEST_F(PerfdiffTest, CliMissingInputExitsOne) {
  const auto a = write("a.json", R"({"x":1})");
  EXPECT_EQ(cli({a.c_str(), (dir_ / "absent.json").string().c_str()}), 1);
}

TEST_F(PerfdiffTest, CliValidateMode) {
  const auto good = write(
      "good.jsonl",
      R"({"telemetry_schema_version":1,"seq":0,"t_ns":1,"kind":"start","obs":{"obs_schema_version":2}})"
      "\n");
  EXPECT_EQ(cli({"--validate", good.c_str()}), 0);
  const auto bad = write("bad.jsonl", "not json\n");
  EXPECT_EQ(cli({"--validate", bad.c_str()}), 1);
}

}  // namespace
}  // namespace stco::perfdiff
