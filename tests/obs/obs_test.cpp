// Metrics-registry unit tests: instrument semantics, snapshot JSON, and
// the determinism contract — serialized reductions produce identical
// snapshots regardless of how many exec worker threads ran the work.

#include "src/obs/obs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "src/exec/context.hpp"

namespace stco::obs {
namespace {

TEST(Metrics, CounterGaugeBasics) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with STCO_OBS=OFF";
  Counter& c = counter("test.obs.counter_basics");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge& g = gauge("test.obs.gauge_basics");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  // Registry returns the same instrument on re-lookup.
  EXPECT_EQ(&counter("test.obs.counter_basics"), &c);
  EXPECT_EQ(&gauge("test.obs.gauge_basics"), &g);
}

TEST(Metrics, HistogramBuckets) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with STCO_OBS=OFF";
  Histogram& h = histogram("test.obs.hist_buckets", {1.0, 10.0, 100.0});
  h.reset();
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (inclusive upper bound)
  h.observe(7.0);    // bucket 1
  h.observe(1000.0); // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1008.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 0u);
  EXPECT_EQ(buckets[3], 1u);
  // Bounds are fixed at first registration.
  EXPECT_EQ(&histogram("test.obs.hist_buckets", {99.0}), &h);
  EXPECT_EQ(h.bounds().size(), 3u);
}

TEST(Metrics, SnapshotValueSemantics) {
  // Snapshot is a plain value type and must work in BOTH build modes —
  // stco::report depends on that under STCO_OBS=OFF.
  Snapshot s;
  s.set_counter("a", 3);
  s.set_gauge("b", 1.5);
  EXPECT_EQ(s.counter_or("a"), 3u);
  EXPECT_EQ(s.counter_or("missing", 9), 9u);
  EXPECT_DOUBLE_EQ(s.gauge_or("b"), 1.5);
  EXPECT_EQ(s.histogram_or_null("none"), nullptr);

  Snapshot t;
  t.set_counter("a", 2);
  t.set_gauge("b", 9.0);
  s.merge(t);
  EXPECT_EQ(s.counter_or("a"), 5u);     // counters add
  EXPECT_DOUBLE_EQ(s.gauge_or("b"), 9.0);  // gauges overwrite
}

TEST(Metrics, SnapshotJsonIsValidAndTagged) {
  Snapshot s;
  s.set_counter("solver.attempts", 12);
  s.set_gauge("stco.library_seconds", 0.25);
  const std::string js = s.to_json();
  EXPECT_TRUE(json_valid(js)) << js;
  EXPECT_NE(js.find("\"obs_schema_version\""), std::string::npos);
  EXPECT_NE(js.find("\"solver.attempts\""), std::string::npos);
}

TEST(Metrics, RegistrySnapshotRoundTrip) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with STCO_OBS=OFF";
  Counter& c = counter("test.obs.roundtrip.c");
  Histogram& h = histogram("test.obs.roundtrip.h", {1.0});
  c.reset();
  h.reset();
  c.add(7);
  h.observe(0.5);
  h.observe(2.0);
  const Snapshot s = snapshot();
  EXPECT_EQ(s.counter_or("test.obs.roundtrip.c"), 7u);
  const HistogramSnapshot* hs = s.histogram_or_null("test.obs.roundtrip.h");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 2u);
  ASSERT_EQ(hs->buckets.size(), 2u);
  EXPECT_EQ(hs->buckets[0], 1u);
  EXPECT_EQ(hs->buckets[1], 1u);
  EXPECT_TRUE(json_valid(s.to_json()));
}

// The determinism contract: the same serialized reduction, run on exec
// contexts of different widths, must leave identical metric values — the
// scheduler may interleave the atomic increments differently but the
// totals (and therefore the Snapshot) cannot depend on thread count.
TEST(Metrics, DeterministicAcrossThreadCounts) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with STCO_OBS=OFF";
  constexpr std::size_t kItems = 257;
  auto run = [&](std::size_t threads) {
    Counter& c = counter("test.obs.determinism.c");
    Histogram& h = histogram("test.obs.determinism.h", {10.0, 100.0});
    c.reset();
    h.reset();
    exec::Context ctx(threads);
    ctx.parallel_for(kItems, [&](std::size_t i) {
      c.add(1);
      h.observe(static_cast<double>(i % 13));
    });
    const Snapshot s = snapshot();
    Snapshot out;
    out.set_counter("c", s.counter_or("test.obs.determinism.c"));
    const auto* hs = s.histogram_or_null("test.obs.determinism.h");
    out.histograms["h"] = *hs;
    return out;
  };
  const Snapshot serial = run(0);
  EXPECT_EQ(serial.counter_or("c"), kItems);
  for (std::size_t threads : {2u, 8u}) {
    const Snapshot wide = run(threads);
    EXPECT_EQ(wide.counter_or("c"), serial.counter_or("c")) << threads;
    EXPECT_EQ(wide.to_json(), serial.to_json()) << threads;
  }
}

}  // namespace
}  // namespace stco::obs
