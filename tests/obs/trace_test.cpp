// Span-tracing tests: RAII nesting, parent propagation across
// exec::Context task boundaries (parallel_for and TaskGroup), and the
// chrome://tracing JSON export round-tripping through the validator.

#include "src/obs/obs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/exec/context.hpp"

namespace stco::obs {
namespace {

std::map<SpanId, SpanRecord> by_id(const std::vector<SpanRecord>& spans) {
  std::map<SpanId, SpanRecord> m;
  for (const auto& s : spans) m[s.id] = s;
  return m;
}

// Every non-root parent id must refer to a collected span (no orphans),
// and children must nest inside their parent's [start, end] window.
void expect_valid_tree(const std::vector<SpanRecord>& spans) {
  const auto ids = by_id(spans);
  for (const auto& s : spans) {
    EXPECT_NE(s.id, 0u);
    EXPECT_GE(s.end_ns, s.start_ns) << s.name;
    if (s.parent == 0) continue;
    const auto it = ids.find(s.parent);
    ASSERT_NE(it, ids.end()) << "orphan parent for span " << s.name;
    EXPECT_LE(it->second.start_ns, s.start_ns) << s.name;
    EXPECT_GE(it->second.end_ns, s.end_ns) << s.name;
  }
}

// Walk parent links from `s` to the root; true if `ancestor` is on the path.
bool has_ancestor(const std::map<SpanId, SpanRecord>& ids, SpanRecord s,
                  SpanId ancestor) {
  while (s.parent != 0) {
    if (s.parent == ancestor) return true;
    const auto it = ids.find(s.parent);
    if (it == ids.end()) return false;
    s = it->second;
  }
  return false;
}

TEST(Trace, NestedSpansSameThread) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with STCO_OBS=OFF";
  TraceSession trace;
  {
    Span outer("test.outer");
    {
      Span inner("test.inner");
      inner.active();
    }
    outer.set_arg("annotated");
  }
  const auto spans = trace.collect();
  ASSERT_EQ(spans.size(), 2u);
  expect_valid_tree(spans);
  // collect_spans sorts by start time: outer opened first.
  EXPECT_STREQ(spans[0].name, "test.outer");
  EXPECT_STREQ(spans[1].name, "test.inner");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].arg, "annotated");
}

TEST(Trace, DisabledRecordsNothing) {
  clear_spans();
  {
    Span s("test.never");  // no TraceSession active
    EXPECT_FALSE(s.active());
  }
  EXPECT_TRUE(collect_spans().empty());
}

TEST(Trace, SpanTreeAcrossParallelFor) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with STCO_OBS=OFF";
  TraceSession trace;
  SpanId root_id = 0;
  constexpr std::size_t kTasks = 64;
  {
    Span root("test.root");
    root_id = root.context().id;
    exec::Context ctx(4);
    ctx.parallel_for(kTasks, [&](std::size_t) { Span task("test.task"); });
  }
  const auto spans = trace.collect();
  expect_valid_tree(spans);
  const auto ids = by_id(spans);
  std::size_t tasks_seen = 0;
  for (const auto& s : spans) {
    if (std::string(s.name) != "test.task") continue;
    ++tasks_seen;
    // Worker threads restore the submitting span context, so every task
    // span — wherever it ran — chains back to the root span.
    EXPECT_TRUE(has_ancestor(ids, s, root_id)) << "task span detached from root";
  }
  EXPECT_EQ(tasks_seen, kTasks);
}

TEST(Trace, SpanTreeAcrossTaskGroup) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with STCO_OBS=OFF";
  TraceSession trace;
  SpanId root_id = 0;
  {
    Span root("test.group_root");
    root_id = root.context().id;
    exec::Context ctx(2);
    exec::TaskGroup group(ctx);
    for (int i = 0; i < 8; ++i)
      group.run([] { Span task("test.group_task"); });
    group.wait();
  }
  const auto spans = trace.collect();
  expect_valid_tree(spans);
  const auto ids = by_id(spans);
  std::size_t tasks_seen = 0;
  for (const auto& s : spans)
    if (std::string(s.name) == "test.group_task") {
      ++tasks_seen;
      EXPECT_TRUE(has_ancestor(ids, s, root_id));
    }
  EXPECT_EQ(tasks_seen, 8u);
}

TEST(Trace, ChromeTraceJsonRoundTrip) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with STCO_OBS=OFF";
  TraceSession trace;
  {
    Span root("test.export_root");
    exec::Context ctx(2);
    ctx.parallel_for(16, [&](std::size_t) { Span task("test.export_task"); });
  }
  const auto spans = trace.collect();
  std::ostringstream os;
  write_chrome_trace(os, spans);
  const std::string js = os.str();
  // The export must parse as JSON and carry the trace-event schema.
  EXPECT_TRUE(json_valid(js)) << js.substr(0, 400);
  EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(js.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(js.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(js.find("test.export_task"), std::string::npos);
  // One complete event per collected span.
  std::size_t events = 0;
  for (std::size_t p = js.find("\"ph\":\"X\""); p != std::string::npos;
       p = js.find("\"ph\":\"X\"", p + 1))
    ++events;
  EXPECT_EQ(events, spans.size());
}

TEST(Trace, WriteFileAndReload) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with STCO_OBS=OFF";
  const std::string path = "/tmp/stco_obs_trace_test.json";
  {
    TraceSession trace;
    { Span s("test.file_span"); }
    trace.write(path);
  }
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::ostringstream ss;
  ss << f.rdbuf();
  EXPECT_TRUE(json_valid(ss.str()));
  EXPECT_NE(ss.str().find("test.file_span"), std::string::npos);
  std::remove(path.c_str());
  EXPECT_THROW(write_chrome_trace_file("/no/such/dir/x.json"),
               std::runtime_error);
}

TEST(Trace, JsonValidatorRejectsMalformed) {
  EXPECT_TRUE(json_valid("{\"a\": [1, 2.5e3, \"s\\u00e9\", true, null]}"));
  EXPECT_FALSE(json_valid("{\"a\": }"));
  EXPECT_FALSE(json_valid("{\"a\": 1,}"));
  EXPECT_FALSE(json_valid("[1, 2"));
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{\"a\": 1} extra"));
}

}  // namespace
}  // namespace stco::obs
