// Telemetry & progress tests: Snapshot delta/merge algebra (counter
// resets, keys appearing mid-stream, empty histograms), ProgressTask
// rate/ETA semantics, always-on span statistics without a TraceSession,
// and the TelemetrySession JSONL contract — including a kill-mid-write
// torn tail and a fault-injected charlib build that is killed, resumed,
// and must leave a parseable stream with monotone done-counts and a
// final ETA of zero.

#include "src/obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "src/charlib/checkpoint.hpp"
#include "src/obs/obs.hpp"
#include "src/persist/fault.hpp"

namespace stco::obs {
namespace {

namespace fs = std::filesystem;

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path("obs_telemetry_scratch") /
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const char* name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

// --- Snapshot::merge -----------------------------------------------------

TEST(SnapshotMerge, CountersAddGaugesOverwrite) {
  Snapshot a, b;
  a.counters["test.m.c"] = 10;
  a.gauges["test.m.g"] = 1.0;
  b.counters["test.m.c"] = 5;
  b.counters["test.m.new"] = 7;
  b.gauges["test.m.g"] = 2.5;
  a.merge(b);
  EXPECT_EQ(a.counter_or("test.m.c"), 15u);
  EXPECT_EQ(a.counter_or("test.m.new"), 7u);
  EXPECT_DOUBLE_EQ(a.gauge_or("test.m.g"), 2.5);
}

TEST(SnapshotMerge, HistogramsBucketwiseAddMinMaxWiden) {
  HistogramSnapshot h1{{1.0, 10.0}, {2, 1, 0}, 3, 6.0, 0.5, 7.0};
  HistogramSnapshot h2{{1.0, 10.0}, {0, 2, 1}, 3, 120.0, 4.0, 100.0};
  Snapshot a, b;
  a.histograms["test.m.h"] = h1;
  b.histograms["test.m.h"] = h2;
  a.merge(b);
  const HistogramSnapshot* m = a.histogram_or_null("test.m.h");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 6u);
  EXPECT_DOUBLE_EQ(m->sum, 126.0);
  EXPECT_DOUBLE_EQ(m->min, 0.5);
  EXPECT_DOUBLE_EQ(m->max, 100.0);
  ASSERT_EQ(m->buckets.size(), 3u);
  EXPECT_EQ(m->buckets[0], 2u);
  EXPECT_EQ(m->buckets[1], 3u);
  EXPECT_EQ(m->buckets[2], 1u);
}

TEST(SnapshotMerge, HistogramBoundsMismatchOverwrites) {
  Snapshot a, b;
  a.histograms["test.m.h"] = {{1.0}, {1, 0}, 1, 0.5, 0.5, 0.5};
  b.histograms["test.m.h"] = {{2.0, 4.0}, {1, 1, 0}, 2, 4.0, 1.0, 3.0};
  a.merge(b);
  const HistogramSnapshot* m = a.histogram_or_null("test.m.h");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->bounds, (std::vector<double>{2.0, 4.0}));
  EXPECT_EQ(m->count, 2u);
}

TEST(SnapshotMerge, EmptyHistogramIsIgnored) {
  Snapshot a, b;
  a.histograms["test.m.h"] = {{1.0}, {1, 0}, 1, 0.5, 0.5, 0.5};
  b.histograms["test.m.h"] = {};  // count == 0: merging must not clobber
  a.merge(b);
  EXPECT_EQ(a.histogram_or_null("test.m.h")->count, 1u);
}

TEST(SnapshotMerge, SpansAddAndWidenProgressOverwrites) {
  Snapshot a, b;
  a.spans["gnn.epoch"] = {2, 100, 60};
  b.spans["gnn.epoch"] = {3, 300, 200};
  a.progress["test.m.p"] = {1, 10, 0.5, 18.0};
  b.progress["test.m.p"] = {10, 10, 0.5, 0.0};
  a.merge(b);
  const SpanStatSnapshot* s = a.span_or_null("gnn.epoch");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->count, 5u);
  EXPECT_EQ(s->total_ns, 400u);
  EXPECT_EQ(s->max_ns, 200u);
  const ProgressSnapshot* p = a.progress_or_null("test.m.p");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->done, 10u);
  EXPECT_DOUBLE_EQ(p->eta_seconds, 0.0);
}

// --- Snapshot::delta_since ----------------------------------------------

TEST(SnapshotDelta, CountersEmitDifferences) {
  Snapshot prev, cur;
  prev.counters["test.d.c"] = 10;
  cur.counters["test.d.c"] = 17;
  cur.counters["test.d.unchanged"] = 3;
  prev.counters["test.d.unchanged"] = 3;
  Snapshot d = cur.delta_since(prev);
  EXPECT_EQ(d.counter_or("test.d.c"), 7u);
  EXPECT_EQ(d.counters.count("test.d.unchanged"), 0u);
}

TEST(SnapshotDelta, CounterResetEmitsFreshValue) {
  // A counter that went backwards (reset between samples) must emit its
  // current value so the merged running total stays monotone.
  Snapshot prev, cur;
  prev.counters["test.d.c"] = 100;
  cur.counters["test.d.c"] = 4;
  Snapshot d = cur.delta_since(prev);
  EXPECT_EQ(d.counter_or("test.d.c"), 4u);
  prev.merge(d);
  EXPECT_EQ(prev.counter_or("test.d.c"), 104u);  // monotone, never shrinks
}

TEST(SnapshotDelta, KeyAppearingMidStreamEmittedInFull) {
  Snapshot prev, cur;
  cur.counters["test.d.fresh"] = 42;
  cur.gauges["test.d.g"] = 1.5;
  cur.histograms["test.d.h"] = {{1.0}, {2, 1}, 3, 5.0, 0.5, 3.0};
  cur.spans["gnn.epoch"] = {1, 50, 50};
  cur.progress["test.d.p"] = {1, 4, 2.0, 1.5};
  Snapshot d = cur.delta_since(prev);
  EXPECT_EQ(d.counter_or("test.d.fresh"), 42u);
  EXPECT_DOUBLE_EQ(d.gauge_or("test.d.g"), 1.5);
  ASSERT_NE(d.histogram_or_null("test.d.h"), nullptr);
  EXPECT_EQ(d.histogram_or_null("test.d.h")->count, 3u);
  ASSERT_NE(d.span_or_null("gnn.epoch"), nullptr);
  ASSERT_NE(d.progress_or_null("test.d.p"), nullptr);
}

TEST(SnapshotDelta, EmptyHistogramOmitted) {
  Snapshot prev, cur;
  cur.histograms["test.d.h"] = {};  // registered but never observed
  Snapshot d = cur.delta_since(prev);
  EXPECT_EQ(d.histograms.count("test.d.h"), 0u);
  EXPECT_TRUE(d.empty());
}

TEST(SnapshotDelta, UnchangedStateYieldsEmptyDelta) {
  Snapshot s;
  s.counters["test.d.c"] = 5;
  s.gauges["test.d.g"] = 2.0;
  s.histograms["test.d.h"] = {{1.0}, {1, 0}, 1, 0.5, 0.5, 0.5};
  s.spans["gnn.epoch"] = {1, 10, 10};
  s.progress["test.d.p"] = {1, 2, 1.0, 1.0};
  EXPECT_TRUE(s.delta_since(s).empty());
}

TEST(SnapshotDelta, DeltaStreamFoldsBackIntoTotals) {
  // Three successive states; merging the start record plus every delta in
  // order must reconstruct the last state exactly.
  Snapshot s0, s1, s2;
  s0.counters["test.d.c"] = 1;
  s0.histograms["test.d.h"] = {{1.0, 2.0}, {1, 0, 0}, 1, 0.5, 0.5, 0.5};
  s1 = s0;
  s1.counters["test.d.c"] = 6;
  s1.gauges["test.d.g"] = 3.0;
  s1.histograms["test.d.h"] = {{1.0, 2.0}, {1, 2, 1}, 4, 9.5, 0.5, 5.0};
  s1.spans["gnn.epoch"] = {2, 40, 30};
  s2 = s1;
  s2.counters["test.d.c"] = 9;
  s2.spans["gnn.epoch"] = {3, 100, 60};
  s2.progress["test.d.p"] = {4, 4, 2.0, 0.0};

  Snapshot folded = s0.delta_since(Snapshot{});  // "start" record
  folded.merge(s1.delta_since(s0));
  folded.merge(s2.delta_since(s1));

  EXPECT_EQ(folded.counter_or("test.d.c"), 9u);
  EXPECT_DOUBLE_EQ(folded.gauge_or("test.d.g"), 3.0);
  const HistogramSnapshot* h = folded.histogram_or_null("test.d.h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4u);
  EXPECT_DOUBLE_EQ(h->sum, 9.5);
  EXPECT_EQ(h->buckets, (std::vector<std::uint64_t>{1, 2, 1}));
  const SpanStatSnapshot* sp = folded.span_or_null("gnn.epoch");
  ASSERT_NE(sp, nullptr);
  EXPECT_EQ(sp->count, 3u);
  EXPECT_EQ(sp->total_ns, 100u);
  EXPECT_EQ(sp->max_ns, 60u);
  EXPECT_EQ(folded.progress_or_null("test.d.p")->done, 4u);
}

// --- ProgressTask --------------------------------------------------------

TEST(Progress, AddAdvanceSampleEta) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with STCO_OBS=OFF";
  ProgressTask& p = progress("test.prog.basic");
  p.reset();
  EXPECT_EQ(p.total(), 0u);
  p.add_work(10);
  p.advance(3);
  p.advance();
  EXPECT_EQ(p.done(), 4u);
  EXPECT_EQ(p.total(), 10u);
  ProgressSnapshot s = p.sample();
  EXPECT_EQ(s.done, 4u);
  EXPECT_EQ(s.total, 10u);
  // Same task on re-lookup; totals keep accumulating across phases.
  EXPECT_EQ(&progress("test.prog.basic"), &p);
  p.add_work(2);
  EXPECT_EQ(p.total(), 12u);
}

TEST(Progress, ReduceWorkFinishesEarlyStop) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with STCO_OBS=OFF";
  ProgressTask& p = progress("test.prog.early");
  p.reset();
  p.add_work(100);
  p.advance(40);
  p.reduce_work(60);  // early stop: the remaining units will never run
  EXPECT_EQ(p.done(), 40u);
  EXPECT_EQ(p.total(), 40u);
  ProgressSnapshot s = p.sample();
  EXPECT_DOUBLE_EQ(s.eta_seconds, 0.0);
}

TEST(Progress, SnapshotCarriesRegisteredTasks) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with STCO_OBS=OFF";
  ProgressTask& p = progress("test.prog.snap");
  p.reset();
  p.add_work(5);
  p.advance(5);
  Snapshot s = snapshot();
  const ProgressSnapshot* got = s.progress_or_null("test.prog.snap");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->done, 5u);
  EXPECT_EQ(got->total, 5u);
  EXPECT_DOUBLE_EQ(got->eta_seconds, 0.0);
}

// --- always-on span statistics ------------------------------------------

TEST(SpanStats, AggregatedWithoutTraceSession) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with STCO_OBS=OFF";
  ASSERT_FALSE(tracing_enabled());
  reset_span_stats();
  {
    Span outer("gnn.epoch");
    Span inner("charlib.build_dataset");
  }
  { Span again("gnn.epoch"); }
  const auto stats = span_stats();
  const SpanStat* epoch = nullptr;
  const SpanStat* build = nullptr;
  for (const auto& s : stats) {
    if (s.name == "gnn.epoch") epoch = &s;
    if (s.name == "charlib.build_dataset") build = &s;
  }
  ASSERT_NE(epoch, nullptr);
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(epoch->count, 2u);
  EXPECT_EQ(build->count, 1u);
  EXPECT_GE(epoch->total_ns, epoch->max_ns);
  // And the registry snapshot carries them for reports/telemetry.
  Snapshot snap = snapshot();
  ASSERT_NE(snap.span_or_null("gnn.epoch"), nullptr);
  EXPECT_EQ(snap.span_or_null("gnn.epoch")->count, 2u);
  reset_span_stats();
  EXPECT_EQ(snapshot().span_or_null("gnn.epoch"), nullptr);
}

// --- TelemetrySession JSONL ---------------------------------------------

TEST_F(TelemetryTest, SessionWritesParseableDeltaStream) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with STCO_OBS=OFF";
  Counter& c = counter("test.tel.events");
  c.reset();
  const std::string file = path("t.jsonl");
  {
    TelemetrySession session({file, /*interval_ms=*/60'000});
    c.add(5);
    session.flush_now();
    c.add(7);
    session.flush_now();
    EXPECT_GE(session.records_written(), 3u);  // start + 2 samples
  }  // destructor appends the "final" record

  TelemetryLog log = read_telemetry_file(file);
  EXPECT_FALSE(log.truncated_tail);
  EXPECT_EQ(log.bad_lines, 0u);
  ASSERT_GE(log.records.size(), 3u);
  EXPECT_EQ(log.records.front().kind, "start");
  EXPECT_EQ(log.records.back().kind, "final");
  for (std::size_t i = 1; i < log.records.size(); ++i)
    EXPECT_GT(log.records[i].seq, log.records[i - 1].seq);
  // Folding the deltas reconstructs the cumulative counter.
  Snapshot merged = log.merged();
  EXPECT_EQ(merged.counter_or("test.tel.events"), 12u);
}

TEST_F(TelemetryTest, QuietTicksWriteNothing) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with STCO_OBS=OFF";
  const std::string file = path("quiet.jsonl");
  std::uint64_t after_start = 0;
  {
    TelemetrySession session({file, /*interval_ms=*/60'000});
    after_start = session.records_written();
    // No obs mutations: repeated explicit flushes must not grow the file.
    session.flush_now();
    session.flush_now();
    EXPECT_EQ(session.records_written(), after_start);
  }
  TelemetryLog log = read_telemetry_file(file);
  ASSERT_GE(log.records.size(), 1u);
  EXPECT_EQ(log.records.front().kind, "start");
  EXPECT_EQ(log.records.back().kind, "final");
}

TEST_F(TelemetryTest, TornTailLineIsSkippedNotFatal) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with STCO_OBS=OFF";
  Counter& c = counter("test.tel.torn");
  c.reset();
  const std::string file = path("torn.jsonl");
  {
    TelemetrySession session({file, /*interval_ms=*/60'000});
    c.add(3);
    session.flush_now();
  }
  // Simulate a kill mid-write(2): sever the stream mid-record, no newline.
  std::ofstream tail(file, std::ios::app | std::ios::binary);
  tail << R"({"telemetry_schema_version":1,"seq":99,"t_ns":12,"kind":"sam)";
  tail.close();

  TelemetryLog log = read_telemetry_file(file);
  EXPECT_TRUE(log.truncated_tail);
  EXPECT_EQ(log.bad_lines, 0u);
  ASSERT_GE(log.records.size(), 2u);
  EXPECT_EQ(log.merged().counter_or("test.tel.torn"), 3u);
}

TEST_F(TelemetryTest, CompleteGarbageLineCountsAsBad) {
  const std::string file = path("bad.jsonl");
  std::ofstream out(file, std::ios::binary);
  out << R"({"telemetry_schema_version":1,"seq":0,"t_ns":1,"kind":"start","obs":{"obs_schema_version":2,"counters":{"test.tel.x":4}}})"
      << "\n";
  out << "not json at all\n";
  out.close();
  TelemetryLog log = read_telemetry_file(file);
  EXPECT_FALSE(log.truncated_tail);
  EXPECT_EQ(log.bad_lines, 1u);
  ASSERT_EQ(log.records.size(), 1u);
  EXPECT_EQ(log.merged().counter_or("test.tel.x"), 4u);
}

TEST_F(TelemetryTest, MissingFileYieldsEmptyLog) {
  TelemetryLog log = read_telemetry_file(path("absent.jsonl"));
  EXPECT_TRUE(log.records.empty());
  EXPECT_FALSE(log.truncated_tail);
  EXPECT_EQ(log.bad_lines, 0u);
  EXPECT_TRUE(log.merged().empty());
}

TEST(SnapshotJson, JsonRoundTripThroughParser) {
  // to_json -> parse_json -> snapshot_from_json preserves every section.
  // Pure value-type path: works in both build modes.
  Snapshot s;
  s.counters["test.j.c"] = 11;
  s.gauges["test.j.g"] = -2.5;
  s.histograms["test.j.h"] = {{1.0, 8.0}, {1, 2, 3}, 6, 40.0, 0.25, 30.0};
  s.spans["gnn.epoch"] = {4, 2000, 900};
  s.progress["test.j.p"] = {3, 9, 1.5, 4.0};

  const std::optional<JsonValue> v = parse_json(s.to_json());
  ASSERT_TRUE(v.has_value());
  Snapshot back = snapshot_from_json(*v);
  EXPECT_EQ(back.counter_or("test.j.c"), 11u);
  EXPECT_DOUBLE_EQ(back.gauge_or("test.j.g"), -2.5);
  const HistogramSnapshot* h = back.histogram_or_null("test.j.h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->bounds, (std::vector<double>{1.0, 8.0}));
  EXPECT_EQ(h->buckets, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(h->count, 6u);
  EXPECT_DOUBLE_EQ(h->sum, 40.0);
  EXPECT_DOUBLE_EQ(h->min, 0.25);
  EXPECT_DOUBLE_EQ(h->max, 30.0);
  const SpanStatSnapshot* sp = back.span_or_null("gnn.epoch");
  ASSERT_NE(sp, nullptr);
  EXPECT_EQ(sp->count, 4u);
  EXPECT_EQ(sp->total_ns, 2000u);
  EXPECT_EQ(sp->max_ns, 900u);
  const ProgressSnapshot* p = back.progress_or_null("test.j.p");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->done, 3u);
  EXPECT_EQ(p->total, 9u);
  EXPECT_DOUBLE_EQ(p->rate_per_sec, 1.5);
  EXPECT_DOUBLE_EQ(p->eta_seconds, 4.0);
}

// --- the headline contract: killed-and-resumed build under telemetry ----

TEST_F(TelemetryTest, KilledAndResumedBuildLeavesCoherentStream) {
  if constexpr (!kEnabled) GTEST_SKIP() << "built with STCO_OBS=OFF";
  const std::string file = path("build.jsonl");
  persist::RetryPolicy no_sleep{1, 0, false};

  const charlib::CornerRanges ranges;
  const auto corners = charlib::corner_grid(ranges, 2);  // 8 corners
  charlib::DatasetOptions opts;
  opts.cell_names = {"INV"};
  opts.input_slews = {15e-9};
  opts.output_loads = {30e-15};

  reset_progress();

  // Run 1: telemetry on, build killed while writing the second shard.
  {
    TelemetrySession session({file, /*interval_ms=*/60'000});
    persist::FaultInjector kill(/*seed=*/5,
                                persist::FaultKind::kCrashBeforeRename,
                                /*at_op=*/3);
    persist::Storage faulty(no_sleep, &kill);
    charlib::CheckpointOptions ckpt{path("ckpt"), /*shard_size=*/3, &faulty};
    EXPECT_THROW(charlib::build_charlib_dataset_resumable(corners, opts, ckpt),
                 persist::CrashError);
    session.flush_now();
  }  // "final" record closes session 1

  // Run 2: a fresh session appends to the same file; resume finishes.
  {
    TelemetrySession session({file, /*interval_ms=*/60'000});
    persist::Storage healthy(no_sleep);
    charlib::CheckpointOptions resume{path("ckpt"), /*shard_size=*/3,
                                      &healthy};
    const auto data =
        charlib::build_charlib_dataset_resumable(corners, opts, resume);
    EXPECT_FALSE(data.empty());
    EXPECT_EQ(data.size() % corners.size(), 0u);  // same samples per corner
    session.flush_now();
  }

  // The stream must be fully parseable (no torn or bad lines: every append
  // was a single write(2) that completed).
  TelemetryLog log = read_telemetry_file(file);
  EXPECT_FALSE(log.truncated_tail);
  EXPECT_EQ(log.bad_lines, 0u);
  ASSERT_GE(log.records.size(), 4u);  // two sessions, >= 2 records each

  // Done-counts for the build's progress task are monotone across the
  // whole file, including the kill/resume boundary.
  Snapshot running;
  std::uint64_t prev_done = 0;
  for (const auto& rec : log.records) {
    running.merge(rec.obs);
    const ProgressSnapshot* p =
        running.progress_or_null("charlib.dataset.corners");
    if (p == nullptr) continue;
    EXPECT_GE(p->done, prev_done);
    prev_done = p->done;
  }

  // Final cumulative state: the task is finished — done == total, ETA 0.
  const ProgressSnapshot* fin =
      running.progress_or_null("charlib.dataset.corners");
  ASSERT_NE(fin, nullptr);
  EXPECT_GT(fin->done, 0u);
  EXPECT_EQ(fin->done, fin->total);
  EXPECT_DOUBLE_EQ(fin->eta_seconds, 0.0);
}

}  // namespace
}  // namespace stco::obs
