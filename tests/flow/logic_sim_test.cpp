#include "src/flow/logic_sim.hpp"

#include <gtest/gtest.h>

#include "src/flow/benchmarks.hpp"
#include "src/flow/sta.hpp"

namespace stco::flow {
namespace {

TEST(CellFunction, CompilesBasicGates) {
  const auto inv = compile_cell_function("INV");
  EXPECT_EQ(inv.arity, 1u);
  EXPECT_TRUE(inv.eval(0));
  EXPECT_FALSE(inv.eval(1));

  const auto nand2 = compile_cell_function("NAND2");
  EXPECT_TRUE(nand2.eval(0b00));
  EXPECT_TRUE(nand2.eval(0b01));
  EXPECT_TRUE(nand2.eval(0b10));
  EXPECT_FALSE(nand2.eval(0b11));

  const auto xor2 = compile_cell_function("XOR2");
  EXPECT_FALSE(xor2.eval(0b00));
  EXPECT_TRUE(xor2.eval(0b01));
  EXPECT_TRUE(xor2.eval(0b10));
  EXPECT_FALSE(xor2.eval(0b11));
}

TEST(CellFunction, AllCombinationalCellsCompile) {
  for (const auto& name : cells::combinational_names()) {
    const auto f = compile_cell_function(name);
    EXPECT_GE(f.arity, 1u) << name;
    EXPECT_LE(f.arity, 4u) << name;
  }
}

TEST(CellFunction, SequentialCellsRejected) {
  EXPECT_THROW(compile_cell_function("DFF"), std::invalid_argument);
}

TEST(EvaluateCycle, SimpleCombinationalCircuit) {
  // y = NAND2(a, b); z = INV(y)  =>  z = a AND b.
  GateNetlist nl;
  const NetId a = nl.add_primary_input();
  const NetId b = nl.add_primary_input();
  const NetId y = nl.add_gate("NAND2", {a, b});
  const NetId z = nl.add_gate("INV", {y});
  nl.mark_primary_output(z);
  for (bool va : {false, true})
    for (bool vb : {false, true}) {
      const auto vals = evaluate_cycle(nl, {va, vb}, {});
      EXPECT_EQ(vals[z], va && vb);
      EXPECT_EQ(vals[y], !(va && vb));
    }
}

TEST(EvaluateCycle, FlipFlopStateInjected) {
  GateNetlist nl;
  const NetId a = nl.add_primary_input();
  const NetId q = nl.add_flipflop(a);
  const NetId y = nl.add_gate("XOR2", {a, q});
  nl.mark_primary_output(y);
  const auto v0 = evaluate_cycle(nl, {true}, {false});
  EXPECT_TRUE(v0[y]);  // 1 xor 0
  const auto v1 = evaluate_cycle(nl, {true}, {true});
  EXPECT_FALSE(v1[y]);  // 1 xor 1
}

TEST(SimulateActivity, ToggleCounterOnDividerChain) {
  // A T-flip-flop style divider: q -> INV -> d. Q toggles every cycle.
  GateNetlist nl;
  const NetId a = nl.add_primary_input();
  (void)a;
  const NetId q = nl.add_flipflop(0);
  const NetId d = nl.add_gate("INV", {q});
  nl.set_flipflop_d(0, d);
  nl.mark_primary_output(q);
  SimOptions opts;
  opts.cycles = 100;
  const auto rep = simulate_activity(nl, opts);
  EXPECT_NEAR(rep.net_activity[q], 1.0, 1e-12);  // toggles every cycle
  EXPECT_NEAR(rep.net_activity[d], 1.0, 1e-12);
}

TEST(SimulateActivity, ConstantInputsNoToggles) {
  GateNetlist nl;
  const NetId a = nl.add_primary_input();
  const NetId y = nl.add_gate("BUF", {a});
  nl.mark_primary_output(y);
  SimOptions opts;
  opts.cycles = 50;
  opts.input_toggle_prob = 0.0;
  opts.randomize_initial_state = false;
  const auto rep = simulate_activity(nl, opts);
  EXPECT_DOUBLE_EQ(rep.net_activity[y], 0.0);
  EXPECT_DOUBLE_EQ(rep.mean_activity, 0.0);
}

TEST(SimulateActivity, ActivityBoundedAndDeterministic) {
  const auto nl = make_benchmark("s298");
  SimOptions opts;
  opts.cycles = 128;
  const auto r1 = simulate_activity(nl, opts);
  const auto r2 = simulate_activity(nl, opts);
  EXPECT_EQ(r1.net_activity, r2.net_activity);
  EXPECT_GT(r1.mean_activity, 0.0);
  for (double a : r1.net_activity) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(SimulateActivity, HigherInputToggleMeansMoreActivity) {
  const auto nl = make_benchmark("s386");
  SimOptions lo, hi;
  lo.cycles = hi.cycles = 128;
  lo.input_toggle_prob = 0.05;
  hi.input_toggle_prob = 0.8;
  EXPECT_LT(simulate_activity(nl, lo).mean_activity,
            simulate_activity(nl, hi).mean_activity);
}

TEST(Sta, MeasuredActivityChangesDynamicPower) {
  const auto nl = make_benchmark("s298");
  LibraryBuildOptions lopts;
  lopts.cell_names = {"INV", "BUF", "NAND2", "NAND3", "NAND4", "NOR2", "NOR3",
                      "AND2", "OR2", "XOR2", "XNOR2", "AOI21", "OAI21", "MUX2", "DFF"};
  lopts.slew_axis = {10e-9, 40e-9};
  lopts.load_axis = {20e-15, 100e-15};
  static const TimingLibrary lib = build_library_spice(compact::cnt_tech(), lopts);

  SimOptions so;
  so.cycles = 64;
  const auto act = simulate_activity(nl, so);

  StaOptions base;
  const auto rep_const = analyze(nl, lib, base);
  StaOptions vec = base;
  vec.measured_activity = &act;
  const auto rep_vec = analyze(nl, lib, vec);
  // Same timing, different power model.
  EXPECT_DOUBLE_EQ(rep_vec.critical_path, rep_const.critical_path);
  EXPECT_NE(rep_vec.dynamic_power, rep_const.dynamic_power);
  EXPECT_GT(rep_vec.dynamic_power, 0.0);
}

TEST(Sta, ActivitySizeMismatchThrows) {
  const auto nl = make_benchmark("s298");
  ActivityReport bogus;
  bogus.net_activity.assign(3, 0.1);
  LibraryBuildOptions lopts;
  lopts.cell_names = {"INV"};
  lopts.slew_axis = {10e-9, 40e-9};
  lopts.load_axis = {20e-15, 100e-15};
  const auto lib = build_library_spice(compact::cnt_tech(), lopts);
  StaOptions opts;
  opts.measured_activity = &bogus;
  // s298 uses more than INV, so this will fail on the lib first — build a
  // tiny netlist instead.
  GateNetlist tiny;
  const NetId a = tiny.add_primary_input();
  tiny.mark_primary_output(tiny.add_gate("INV", {a}));
  EXPECT_THROW(analyze(tiny, lib, opts), std::invalid_argument);
}

}  // namespace
}  // namespace stco::flow
