#include "src/flow/sta.hpp"

#include <gtest/gtest.h>

#include "src/flow/benchmarks.hpp"

namespace stco::flow {
namespace {

/// One SPICE-characterized library shared by the suite (slow to build).
const TimingLibrary& spice_lib() {
  static const TimingLibrary lib = [] {
    LibraryBuildOptions opts;
    opts.slew_axis = {10e-9, 40e-9};
    opts.load_axis = {20e-15, 100e-15};
    return build_library_spice(compact::cnt_tech(), opts);
  }();
  return lib;
}

TEST(Liberty, SpiceLibraryCoversMappedCells) {
  const auto& lib = spice_lib();
  for (const auto& name : mapped_cell_set()) {
    ASSERT_TRUE(lib.has_cell(name)) << name;
    const auto& ct = lib.cell(name);
    EXPECT_GT(ct.input_cap, 0.0) << name;
    EXPECT_GT(ct.leakage, 0.0) << name;
    EXPECT_GT(ct.transistors, 0u) << name;
    for (std::size_t si = 0; si < ct.slew_axis.size(); ++si)
      for (std::size_t li = 0; li < ct.load_axis.size(); ++li)
        EXPECT_GT(ct.delay(si, li), 0.0) << name;
  }
  EXPECT_GT(lib.dff_clk2q, 0.0);
  EXPECT_GT(lib.dff_setup, 0.0);
  EXPECT_GT(lib.dff_cap, 0.0);
}

TEST(Liberty, DelayIncreasesWithLoad) {
  const auto& ct = spice_lib().cell("INV");
  EXPECT_GT(ct.delay_at(10e-9, 100e-15), ct.delay_at(10e-9, 20e-15));
}

TEST(Liberty, InterpolationWithinTableRange) {
  const auto& ct = spice_lib().cell("NAND2");
  const double mid = ct.delay_at(25e-9, 60e-15);
  EXPECT_GT(mid, ct.delay_at(10e-9, 20e-15));
  EXPECT_LT(mid, ct.delay_at(40e-9, 100e-15));
}

TEST(Liberty, UnknownCellThrows) {
  EXPECT_THROW(spice_lib().cell("NAND9"), std::invalid_argument);
}

TEST(Sta, ChainDelayAccumulates) {
  // INV chain of length 4: critical path ~ 4 inverter delays.
  GateNetlist nl("chain");
  NetId n = nl.add_primary_input();
  for (int i = 0; i < 4; ++i) n = nl.add_gate("INV", {n});
  nl.mark_primary_output(n);
  const auto rep1 = analyze(nl, spice_lib());

  GateNetlist nl2("chain8");
  NetId m = nl2.add_primary_input();
  for (int i = 0; i < 8; ++i) m = nl2.add_gate("INV", {m});
  nl2.mark_primary_output(m);
  const auto rep2 = analyze(nl2, spice_lib());
  EXPECT_NEAR(rep2.critical_path / rep1.critical_path, 2.0, 0.35);
}

TEST(Sta, ReportFieldsConsistent) {
  const auto nl = make_benchmark("s298");
  const auto rep = analyze(nl, spice_lib());
  EXPECT_GT(rep.critical_path, 0.0);
  EXPECT_GT(rep.min_period, rep.critical_path * 0.99);
  EXPECT_NEAR(rep.fmax * rep.min_period, 1.0, 1e-9);
  EXPECT_GT(rep.dynamic_power, 0.0);
  EXPECT_GT(rep.leakage_power, 0.0);
  EXPECT_NEAR(rep.total_power, rep.dynamic_power + rep.leakage_power, 1e-12);
  EXPECT_GT(rep.area, 0.0);
  EXPECT_EQ(rep.num_gates, 119u);
}

TEST(Sta, BiggerBenchmarkHasMoreAreaAndPower) {
  const auto s298 = analyze(make_benchmark("s298"), spice_lib());
  const auto s1488 = analyze(make_benchmark("s1488"), spice_lib());
  EXPECT_GT(s1488.area, 2.0 * s298.area);
  EXPECT_GT(s1488.leakage_power, 2.0 * s298.leakage_power);
}

TEST(Sta, MacCriticalPathGrowsWithWidth) {
  const auto m8 = analyze(make_mac(8), spice_lib());
  const auto m16 = analyze(make_mac(16), spice_lib());
  EXPECT_GT(m16.critical_path, 1.4 * m8.critical_path);
}

TEST(Sta, HigherVddIsFaster) {
  LibraryBuildOptions opts;
  opts.slew_axis = {10e-9, 40e-9};
  opts.load_axis = {20e-15, 100e-15};
  auto hi_tech = compact::cnt_tech();
  hi_tech.vdd *= 1.3;
  const auto lib_hi = build_library_spice(hi_tech, opts);
  const auto nl = make_benchmark("s386");
  const auto lo = analyze(nl, spice_lib());
  const auto hi = analyze(nl, lib_hi);
  EXPECT_LT(hi.critical_path, lo.critical_path);
}

TEST(Sta, CellAreaScalesWithTransistors) {
  const auto& inv = spice_lib().cell("INV");
  const auto& nand4 = spice_lib().cell("NAND4");
  EXPECT_NEAR(cell_area(nand4, compact::cnt_tech()) / cell_area(inv, compact::cnt_tech()),
              4.0, 1e-9);
}

}  // namespace
}  // namespace stco::flow
