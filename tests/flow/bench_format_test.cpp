#include "src/flow/bench_format.hpp"

#include <gtest/gtest.h>

#include "src/flow/logic_sim.hpp"

namespace stco::flow {
namespace {

// A small sequential circuit in ISCAS .bench style (deliberately listing
// gates out of topological order).
const char* kSample = R"(
# sample circuit
INPUT(A)
INPUT(B)
OUTPUT(Y)

Y = NOT(n2)
n2 = NAND(A, q)
q = DFF(n3)
n3 = OR(n2, B)
)";

TEST(BenchFormat, ParsesOutOfOrderDefinitions) {
  const auto nl = parse_bench(kSample, "sample");
  EXPECT_EQ(nl.primary_inputs().size(), 2u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  EXPECT_EQ(nl.num_flipflops(), 1u);
  EXPECT_EQ(nl.num_gates(), 3u);  // NOT + NAND + OR
  EXPECT_NO_THROW(nl.check());
}

TEST(BenchFormat, LogicFunctionIsCorrect) {
  const auto nl = parse_bench(kSample);
  // With q = 0: n2 = NAND(A,0) = 1, Y = NOT(1) = 0 regardless of A.
  for (bool a : {false, true}) {
    const auto v = evaluate_cycle(nl, {a, false}, {false});
    EXPECT_FALSE(v[nl.primary_outputs()[0]]);
  }
  // With q = 1: n2 = NOT(A), Y = A.
  for (bool a : {false, true}) {
    const auto v = evaluate_cycle(nl, {a, false}, {true});
    EXPECT_EQ(v[nl.primary_outputs()[0]], a);
  }
}

TEST(BenchFormat, WideGatesDecompose) {
  const char* wide = R"(
INPUT(a) INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
INPUT(f)
OUTPUT(y)
y = NAND(a, b, c, d, e, f)
)";
  // Note: two INPUTs on one line is malformed; fix the text first.
  (void)wide;
  const char* wide_ok = R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
INPUT(f)
OUTPUT(y)
y = NAND(a, b, c, d, e, f)
)";
  const auto nl = parse_bench(wide_ok);
  // 6 inputs -> AND4(a..d) + AND2(e,f) -> NAND2 of the two: 3 gates.
  EXPECT_EQ(nl.num_gates(), 3u);
  // Functional check: output low only when all inputs high.
  std::vector<bool> all_high(6, true);
  EXPECT_FALSE(evaluate_cycle(nl, all_high, {})[nl.primary_outputs()[0]]);
  auto one_low = all_high;
  one_low[3] = false;
  EXPECT_TRUE(evaluate_cycle(nl, one_low, {})[nl.primary_outputs()[0]]);
}

TEST(BenchFormat, XorChainAndPolarity) {
  const char* x = R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
y = XNOR(a, b, c)
)";
  const auto nl = parse_bench(x);
  for (unsigned m = 0; m < 8; ++m) {
    const bool a = m & 1, b = (m >> 1) & 1, c = (m >> 2) & 1;
    const bool expected = !(a ^ b ^ c);
    EXPECT_EQ(evaluate_cycle(nl, {a, b, c}, {})[nl.primary_outputs()[0]], expected)
        << m;
  }
}

TEST(BenchFormat, ErrorsAreDiagnosed) {
  EXPECT_THROW(parse_bench("INPUT(a)\ny = NAND(a, zzz)\nOUTPUT(y)\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n"),
               std::invalid_argument);
  // Combinational cycle.
  EXPECT_THROW(parse_bench("INPUT(a)\nOUTPUT(x)\nx = NOT(z)\nz = NOT(x)\n"),
               std::invalid_argument);
  // Duplicate definition.
  EXPECT_THROW(parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n"),
               std::invalid_argument);
  // Undefined output.
  EXPECT_THROW(parse_bench("INPUT(a)\nOUTPUT(nope)\ny = NOT(a)\n"),
               std::invalid_argument);
}

TEST(BenchFormat, SequentialLoopThroughDffIsLegal) {
  // q feeds logic that feeds q's D input — fine through a flip-flop.
  const char* loop = R"(
INPUT(en)
OUTPUT(q)
q = DFF(d)
nq = NOT(q)
d = AND(nq, en)
)";
  const auto nl = parse_bench(loop);
  EXPECT_NO_THROW(nl.check());
  // With en=1 this is a toggle divider: q alternates each cycle.
  SimOptions so;
  so.cycles = 50;
  so.input_toggle_prob = 0.0;
  so.randomize_initial_state = false;
  // Force en high by toggling once... simpler: evaluate manually.
  auto v0 = evaluate_cycle(nl, {true}, {false});
  const NetId d_net = nl.flipflops()[0].d;
  EXPECT_TRUE(v0[d_net]);   // d = !0 & 1 = 1
  auto v1 = evaluate_cycle(nl, {true}, {true});
  EXPECT_FALSE(v1[d_net]);  // d = !1 & 1 = 0
}

}  // namespace
}  // namespace stco::flow
