#include "src/flow/liberty_reader.hpp"

#include <gtest/gtest.h>

#include "src/flow/benchmarks.hpp"
#include "src/flow/liberty_writer.hpp"
#include "src/flow/sta.hpp"

namespace stco::flow {
namespace {

const TimingLibrary& original() {
  static const TimingLibrary lib = [] {
    LibraryBuildOptions opts;
    opts.cell_names = {"INV", "NAND2", "NOR2", "DFF"};
    opts.slew_axis = {10e-9, 40e-9};
    opts.load_axis = {20e-15, 100e-15};
    return build_library_spice(compact::cnt_tech(), opts);
  }();
  return lib;
}

TEST(LibertyReader, RoundTripPreservesTables) {
  const auto& src = original();
  const auto back = read_liberty(liberty_text(src));
  ASSERT_EQ(back.cells.size(), src.cells.size());
  EXPECT_NEAR(back.tech.vdd, src.tech.vdd, 1e-9);
  for (const auto& [name, ct] : src.cells) {
    ASSERT_TRUE(back.has_cell(name)) << name;
    const auto& rt = back.cell(name);
    EXPECT_EQ(rt.slew_axis.size(), ct.slew_axis.size());
    EXPECT_EQ(rt.load_axis.size(), ct.load_axis.size());
    for (std::size_t i = 0; i < ct.slew_axis.size(); ++i)
      EXPECT_NEAR(rt.slew_axis[i], ct.slew_axis[i], 1e-12) << name;
    for (std::size_t r = 0; r < ct.delay.rows(); ++r)
      for (std::size_t c = 0; c < ct.delay.cols(); ++c) {
        EXPECT_NEAR(rt.delay(r, c) / ct.delay(r, c), 1.0, 1e-4) << name;
        EXPECT_NEAR(rt.out_slew(r, c) / ct.out_slew(r, c), 1.0, 1e-4) << name;
      }
    EXPECT_NEAR(rt.input_cap / ct.input_cap, 1.0, 1e-4) << name;
    EXPECT_NEAR(rt.leakage / ct.leakage, 1.0, 1e-4) << name;
    EXPECT_NEAR(rt.flip_energy / ct.flip_energy, 1.0, 1e-4) << name;
    EXPECT_EQ(rt.transistors, ct.transistors) << name;
  }
  EXPECT_NEAR(back.dff_setup / src.dff_setup, 1.0, 1e-4);
  EXPECT_NEAR(back.dff_clk2q / src.dff_clk2q, 1.0, 1e-4);
}

TEST(LibertyReader, RoundTrippedLibraryDrivesSta) {
  const auto back = read_liberty(liberty_text(original()));
  GateNetlist nl("t");
  NetId n = nl.add_primary_input();
  for (int i = 0; i < 3; ++i) n = nl.add_gate("NAND2", {n, n});
  const NetId q = nl.add_flipflop(n);
  nl.mark_primary_output(q);
  const auto a = analyze(nl, original());
  const auto b = analyze(nl, back);
  EXPECT_NEAR(b.critical_path / a.critical_path, 1.0, 1e-3);
  EXPECT_NEAR(b.leakage_power / a.leakage_power, 1.0, 1e-3);
}

TEST(LibertyReader, FileRoundTrip) {
  write_liberty_file("/tmp/stco_rt.lib", original());
  const auto back = read_liberty_file("/tmp/stco_rt.lib");
  EXPECT_TRUE(back.has_cell("INV"));
  EXPECT_THROW(read_liberty_file("/no/such/file.lib"), std::runtime_error);
}

TEST(LibertyReader, MalformedInputsRejected) {
  EXPECT_THROW(read_liberty("library (x) { cell (A) { "), std::invalid_argument);
  EXPECT_THROW(read_liberty("library (x) { }"), std::invalid_argument);
  EXPECT_THROW(read_liberty("/* unterminated"), std::invalid_argument);
}

}  // namespace
}  // namespace stco::flow
