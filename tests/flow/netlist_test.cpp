#include "src/flow/netlist.hpp"

#include <gtest/gtest.h>

#include "src/flow/benchmarks.hpp"

namespace stco::flow {
namespace {

TEST(GateNetlist, BasicConstruction) {
  GateNetlist nl("t");
  const NetId a = nl.add_primary_input();
  const NetId b = nl.add_primary_input();
  const NetId y = nl.add_gate("NAND2", {a, b});
  nl.mark_primary_output(y);
  EXPECT_EQ(nl.num_gates(), 1u);
  EXPECT_EQ(nl.num_nets(), 3u);
  EXPECT_NO_THROW(nl.check());
}

TEST(GateNetlist, RejectsBadNets) {
  GateNetlist nl;
  EXPECT_THROW(nl.add_gate("INV", {5}), std::out_of_range);
  EXPECT_THROW(nl.add_gate("INV", {}), std::invalid_argument);
  EXPECT_THROW(nl.add_flipflop(9), std::out_of_range);
}

TEST(GateNetlist, CheckCatchesUndrivenUse) {
  GateNetlist nl;
  const NetId a = nl.add_primary_input();
  const NetId dangling = nl.new_net();  // never driven
  nl.add_gate("NAND2", {a, dangling});
  EXPECT_THROW(nl.check(), std::invalid_argument);
}

TEST(GateNetlist, FlipFlopRewire) {
  GateNetlist nl;
  const NetId a = nl.add_primary_input();
  const NetId q = nl.add_flipflop(a);
  const NetId y = nl.add_gate("INV", {q});
  nl.set_flipflop_d(0, y);
  nl.mark_primary_output(q);
  EXPECT_NO_THROW(nl.check());
  EXPECT_EQ(nl.flipflops()[0].d, y);
}

TEST(Benchmarks, RandomSynthesisMatchesSpec) {
  SyntheticSpec spec;
  spec.name = "rnd";
  spec.n_inputs = 6;
  spec.n_outputs = 4;
  spec.n_ffs = 5;
  spec.n_gates = 200;
  spec.seed = 3;
  const auto nl = synthesize_random(spec);
  EXPECT_EQ(nl.num_gates(), 200u);
  EXPECT_EQ(nl.num_flipflops(), 5u);
  EXPECT_EQ(nl.primary_inputs().size(), 6u);
  EXPECT_EQ(nl.primary_outputs().size(), 4u);
  EXPECT_NO_THROW(nl.check());
}

TEST(Benchmarks, RandomSynthesisDeterministicPerSeed) {
  SyntheticSpec spec;
  spec.n_gates = 50;
  const auto a = synthesize_random(spec);
  const auto b = synthesize_random(spec);
  ASSERT_EQ(a.num_gates(), b.num_gates());
  for (std::size_t i = 0; i < a.num_gates(); ++i) {
    EXPECT_EQ(a.gates()[i].cell, b.gates()[i].cell);
    EXPECT_EQ(a.gates()[i].fanin, b.gates()[i].fanin);
  }
}

TEST(Benchmarks, MacIsStructural) {
  const auto mac = make_mac(8);
  EXPECT_NO_THROW(mac.check());
  // 8x8: 64 partial products + FA arrays; accumulator of ~18 FFs.
  EXPECT_GT(mac.num_gates(), 300u);
  EXPECT_GE(mac.num_flipflops(), 17u);
  // Only arithmetic cells appear.
  for (const auto& [cell, count] : mac.cell_histogram()) {
    EXPECT_TRUE(cell == "AND2" || cell == "XOR2" || cell == "OR2" || cell == "INV")
        << cell;
    EXPECT_GT(count, 0u);
  }
}

TEST(Benchmarks, MacScalesQuadratically) {
  const auto m8 = make_mac(8);
  const auto m16 = make_mac(16);
  const double ratio = static_cast<double>(m16.num_gates()) /
                       static_cast<double>(m8.num_gates());
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
}

TEST(Benchmarks, AllTable1BenchmarksBuild) {
  ASSERT_EQ(table1_benchmarks().size(), 10u);
  for (const auto& name : table1_benchmarks()) {
    const auto nl = make_benchmark(name);
    EXPECT_NO_THROW(nl.check()) << name;
    EXPECT_GT(nl.num_gates(), 50u) << name;
  }
}

TEST(Benchmarks, Iscas89ScalesMatchPublishedCounts) {
  EXPECT_EQ(make_benchmark("s298").num_gates(), 119u);
  EXPECT_EQ(make_benchmark("s298").num_flipflops(), 14u);
  EXPECT_EQ(make_benchmark("s1488").num_gates(), 653u);
  EXPECT_EQ(make_benchmark("s1488").num_flipflops(), 6u);
}

TEST(Benchmarks, UnknownNameThrows) {
  EXPECT_THROW(make_benchmark("s9999"), std::invalid_argument);
}

}  // namespace
}  // namespace stco::flow
