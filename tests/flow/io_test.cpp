#include <gtest/gtest.h>

#include <fstream>

#include "src/flow/benchmarks.hpp"
#include "src/flow/liberty_writer.hpp"
#include "src/flow/netlist_io.hpp"

namespace stco::flow {
namespace {

const TimingLibrary& tiny_lib() {
  static const TimingLibrary lib = [] {
    LibraryBuildOptions opts;
    opts.cell_names = {"INV", "NAND2", "DFF"};
    opts.slew_axis = {10e-9, 40e-9};
    opts.load_axis = {20e-15, 100e-15};
    return build_library_spice(compact::cnt_tech(), opts);
  }();
  return lib;
}

TEST(LibertyWriter, ContainsRequiredGroups) {
  const std::string text = liberty_text(tiny_lib());
  EXPECT_NE(text.find("library (fast_stco_lib)"), std::string::npos);
  EXPECT_NE(text.find("lu_table_template (nldm_template)"), std::string::npos);
  EXPECT_NE(text.find("cell (INV)"), std::string::npos);
  EXPECT_NE(text.find("cell (NAND2)"), std::string::npos);
  EXPECT_NE(text.find("cell (DFF)"), std::string::npos);
  EXPECT_NE(text.find("clocked_on : \"CK\""), std::string::npos);
  EXPECT_NE(text.find("clock : true"), std::string::npos);
  EXPECT_NE(text.find("cell_rise"), std::string::npos);
  EXPECT_NE(text.find("rise_transition"), std::string::npos);
}

TEST(LibertyWriter, UnitsConverted) {
  // The INV delay values (tens of ns in SI) must appear in ns units —
  // numbers of order 10-1000, not 1e-8.
  const std::string text = liberty_text(tiny_lib());
  EXPECT_EQ(text.find("e-08"), std::string::npos);
  EXPECT_EQ(text.find("e-15"), std::string::npos);
}

TEST(LibertyWriter, FileRoundTrip) {
  const std::string path = "/tmp/stco_test_lib.lib";
  write_liberty_file(path, tiny_lib());
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string first;
  std::getline(f, first);
  EXPECT_NE(first.find("library"), std::string::npos);
  EXPECT_THROW(write_liberty_file("/nonexistent_dir/x.lib", tiny_lib()),
               std::runtime_error);
}

TEST(VerilogWriter, StructureAndInstances) {
  GateNetlist nl("demo");
  const NetId a = nl.add_primary_input();
  const NetId b = nl.add_primary_input();
  const NetId y = nl.add_gate("NAND2", {a, b});
  const NetId q = nl.add_flipflop(y);
  nl.mark_primary_output(q);
  const std::string v = verilog_text(nl);
  EXPECT_NE(v.find("module demo (clk, pi0, pi1, po0);"), std::string::npos);
  EXPECT_NE(v.find("NAND2 u0 (.Y(net2), .A(net0), .B(net1));"), std::string::npos);
  EXPECT_NE(v.find("DFF u1 (.Q(net3), .D(net2), .CK(clk));"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(VerilogWriter, AllBenchmarksSerialize) {
  for (const auto& name : {"s298", "16bit MAC"}) {
    const auto nl = make_benchmark(name);
    const std::string v = verilog_text(nl);
    EXPECT_GT(v.size(), 1000u) << name;
    // One instance line per gate + FF.
    std::size_t instances = 0;
    for (std::size_t pos = 0; (pos = v.find("\n  ", pos)) != std::string::npos; ++pos)
      if (v.compare(pos + 3, 4, "wire") != 0 && v.compare(pos + 3, 5, "input") != 0 &&
          v.compare(pos + 3, 6, "output") != 0 && v.compare(pos + 3, 6, "assign") != 0)
        ++instances;
    EXPECT_EQ(instances, nl.num_gates() + nl.num_flipflops()) << name;
  }
}

TEST(NetlistStats, DepthAndHistogram) {
  GateNetlist nl("chain");
  NetId n = nl.add_primary_input();
  for (int i = 0; i < 5; ++i) n = nl.add_gate("INV", {n});
  nl.mark_primary_output(n);
  EXPECT_EQ(logic_depth(nl), 5u);
  const std::string s = netlist_stats(nl);
  EXPECT_NE(s.find("5 gates"), std::string::npos);
  EXPECT_NE(s.find("INV: 5"), std::string::npos);
  EXPECT_NE(s.find("depth 5"), std::string::npos);
}

TEST(NetlistStats, MacDepthScalesWithWidth) {
  EXPECT_GT(logic_depth(make_mac(16)), logic_depth(make_mac(8)));
}

}  // namespace
}  // namespace stco::flow
