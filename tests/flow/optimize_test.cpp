#include "src/flow/optimize.hpp"

#include <gtest/gtest.h>

#include "src/flow/benchmarks.hpp"
#include "src/flow/logic_sim.hpp"

namespace stco::flow {
namespace {

const TimingLibrary& lib() {
  static const TimingLibrary l = [] {
    LibraryBuildOptions opts;
    opts.slew_axis = {10e-9, 40e-9};
    // The load axis must reach the un-buffered fanout-20 loads these tests
    // construct, or table clamping hides the very penalty buffering fixes.
    opts.load_axis = {20e-15, 100e-15, 320e-15};
    return build_library_spice(compact::cnt_tech(), opts);
  }();
  return l;
}

TEST(DriveLadder, VariantsChain) {
  EXPECT_EQ(next_drive_variant("INV"), "INVX2");
  EXPECT_EQ(next_drive_variant("INVX2"), "INVX4");
  EXPECT_EQ(next_drive_variant("BUF"), "BUFX2");
  EXPECT_EQ(next_drive_variant("NAND2"), "");
}

/// An INV chain driving a heavy load: upsizing the chain must speed it up.
GateNetlist loaded_chain() {
  GateNetlist nl("loaded");
  NetId n = nl.add_primary_input();
  for (int i = 0; i < 4; ++i) n = nl.add_gate("INV", {n});
  // Fan the last stage out to many consumers (load).
  for (int i = 0; i < 12; ++i) nl.mark_primary_output(nl.add_gate("INV", {n}));
  nl.mark_primary_output(n);
  return nl;
}

TEST(Upsize, ImprovesLoadedChainPeriod) {
  const auto nl = loaded_chain();
  const auto res = upsize_critical_path(nl, lib());
  EXPECT_GT(res.cells_upsized, 0u);
  EXPECT_LT(res.period_after, res.period_before);
  EXPECT_NO_THROW(res.netlist.check());
  // Gate count unchanged: sizing only swaps cells.
  EXPECT_EQ(res.netlist.num_gates(), nl.num_gates());
}

TEST(Upsize, NeverWorsensTiming) {
  for (const char* name : {"s298", "s386"}) {
    const auto nl = make_benchmark(name);
    const auto res = upsize_critical_path(nl, lib());
    EXPECT_LE(res.period_after, res.period_before) << name;
  }
}

TEST(InsertBuffers, SplitsHighFanoutNets) {
  // One INV driving 20 other INVs: fanout 20 >> threshold.
  GateNetlist nl("fanout");
  const NetId a = nl.add_primary_input();
  const NetId hub = nl.add_gate("INV", {a});
  for (int i = 0; i < 20; ++i) nl.mark_primary_output(nl.add_gate("INV", {hub}));
  const auto res = insert_buffers(nl, lib());
  EXPECT_GE(res.buffers_inserted, 1u);
  EXPECT_NO_THROW(res.netlist.check());
  EXPECT_EQ(res.netlist.num_gates(), nl.num_gates() + res.buffers_inserted);
  // The hub's direct gate fanout shrank: timing should improve (smaller
  // load on the critical driver).
  EXPECT_LT(res.period_after, res.period_before);
}

TEST(InsertBuffers, NoOpBelowThreshold) {
  GateNetlist nl("small");
  const NetId a = nl.add_primary_input();
  const NetId y = nl.add_gate("INV", {a});
  nl.mark_primary_output(nl.add_gate("INV", {y}));
  const auto res = insert_buffers(nl, lib());
  EXPECT_EQ(res.buffers_inserted, 0u);
  EXPECT_DOUBLE_EQ(res.period_after, res.period_before);
}

TEST(InsertBuffers, PreservesLogicFunction) {
  // Buffering must not change the simulated behaviour of the circuit.
  const auto nl = make_benchmark("s298");
  OptimizeOptions opts;
  opts.fanout_threshold = 4;  // force many insertions
  const auto res = insert_buffers(nl, lib(), opts);
  ASSERT_GT(res.buffers_inserted, 0u);

  SimOptions so;
  so.cycles = 32;
  const auto act_before = simulate_activity(nl, so);
  const auto act_after = simulate_activity(res.netlist, so);
  // Primary outputs toggle identically cycle-by-cycle => equal activity.
  for (std::size_t i = 0; i < nl.primary_outputs().size(); ++i) {
    EXPECT_DOUBLE_EQ(act_before.net_activity[nl.primary_outputs()[i]],
                     act_after.net_activity[res.netlist.primary_outputs()[i]])
        << "PO " << i;
  }
}

TEST(InsertBuffers, ComposesWithUpsizing) {
  const auto nl = loaded_chain();
  OptimizeOptions opts;
  opts.fanout_threshold = 6;
  const auto buffered = insert_buffers(nl, lib(), opts);
  const auto sized = upsize_critical_path(buffered.netlist, lib(), opts);
  EXPECT_LE(sized.period_after, buffered.period_after);
  EXPECT_NO_THROW(sized.netlist.check());
}

}  // namespace
}  // namespace stco::flow
