#include <gtest/gtest.h>

#include "src/flow/benchmarks.hpp"
#include "src/flow/sta.hpp"

namespace stco::flow {
namespace {

const TimingLibrary& lib() {
  static const TimingLibrary l = [] {
    LibraryBuildOptions opts;
    opts.slew_axis = {10e-9, 40e-9};
    opts.load_axis = {20e-15, 100e-15};
    return build_library_spice(compact::cnt_tech(), opts);
  }();
  return l;
}

TEST(CriticalPath, ChainPathHasAllStages) {
  GateNetlist nl("chain");
  NetId n = nl.add_primary_input();
  for (int i = 0; i < 4; ++i) n = nl.add_gate("INV", {n});
  nl.mark_primary_output(n);
  const auto rep = analyze(nl, lib());
  const auto cp = trace_critical_path(nl, lib(), rep.min_period);
  // <input> + 4 INV stages.
  ASSERT_EQ(cp.stages.size(), 5u);
  EXPECT_EQ(cp.stages.front().cell, "<input>");
  for (std::size_t i = 1; i < cp.stages.size(); ++i) {
    EXPECT_EQ(cp.stages[i].cell, "INV");
    EXPECT_GT(cp.stages[i].arrival, cp.stages[i - 1].arrival);
  }
  EXPECT_FALSE(cp.endpoint_is_ff);
  EXPECT_NEAR(cp.arrival, rep.critical_path, 1e-12);
}

TEST(CriticalPath, PicksTheSlowerBranch) {
  // Two parallel branches into an AND2: a 1-INV branch and a 3-INV branch;
  // the trace must follow the deep branch.
  GateNetlist nl("branchy");
  const NetId a = nl.add_primary_input();
  const NetId quick = nl.add_gate("INV", {a});
  NetId slow = a;
  for (int i = 0; i < 3; ++i) slow = nl.add_gate("INV", {slow});
  const NetId y = nl.add_gate("AND2", {quick, slow});
  nl.mark_primary_output(y);
  const auto rep = analyze(nl, lib());
  const auto cp = trace_critical_path(nl, lib(), rep.min_period);
  // <input> + 3 INVs + AND2.
  ASSERT_EQ(cp.stages.size(), 5u);
  EXPECT_EQ(cp.stages.back().cell, "AND2");
  EXPECT_EQ(cp.stages[1].cell, "INV");
  EXPECT_EQ(cp.stages[3].cell, "INV");
}

TEST(CriticalPath, SlackZeroAtMinPeriodEndpoint) {
  const auto nl = make_benchmark("s298");
  const auto rep = analyze(nl, lib());
  // min_period includes the clock margin, so the worst slack is the margin
  // slice (minus setup bookkeeping); at the raw critical path the worst
  // endpoint should be within rounding of zero slack.
  const auto cp = trace_critical_path(nl, lib(), rep.critical_path);
  EXPECT_NEAR(cp.slack, cp.required - cp.arrival, 1e-15);
  EXPECT_LE(cp.slack, 1e-12);
  EXPECT_GE(cp.stages.size(), 2u);
}

TEST(CriticalPath, FfEndpointsIncludeSetup) {
  const auto nl = make_benchmark("s298");
  const auto rep = analyze(nl, lib());
  const auto cp = trace_critical_path(nl, lib(), rep.min_period);
  if (cp.endpoint_is_ff) {
    EXPECT_NEAR(cp.required, rep.min_period - lib().dff_setup, 1e-15);
  }
  EXPECT_GE(cp.slack, 0.0);  // min_period has margin, so nothing violates
}

TEST(EndpointSlacks, CountsAndOrdering) {
  const auto nl = make_benchmark("s386");
  const auto rep = analyze(nl, lib());
  const auto slacks = endpoint_slacks(nl, lib(), rep.min_period);
  EXPECT_EQ(slacks.size(), nl.num_flipflops() + nl.primary_outputs().size());
  double worst = 1e300;
  for (double s : slacks) worst = std::min(worst, s);
  // At min_period (with margin) every endpoint meets timing.
  EXPECT_GE(worst, 0.0);
  // Halving the period must create violations.
  const auto tight = endpoint_slacks(nl, lib(), rep.min_period / 4.0);
  double worst_tight = 1e300;
  for (double s : tight) worst_tight = std::min(worst_tight, s);
  EXPECT_LT(worst_tight, 0.0);
}

}  // namespace
}  // namespace stco::flow
