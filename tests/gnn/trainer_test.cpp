#include "src/gnn/trainer.hpp"

#include <gtest/gtest.h>

#include "src/gnn/models.hpp"
#include "src/tensor/ops.hpp"

namespace stco::gnn {
namespace {

TEST(Trainer, EmptyDatasetThrows) {
  EXPECT_THROW(train({}, [](std::size_t) { return tensor::Tensor::scalar(0.0); }, 0, {}),
               std::invalid_argument);
}

TEST(Trainer, ReducesLossOnLinearProblem) {
  // Learn y = 2x with a single weight.
  tensor::Tensor w = tensor::Tensor::scalar(0.0, true);
  std::vector<double> xs, ys;
  for (int i = 0; i < 16; ++i) {
    xs.push_back(0.1 * i);
    ys.push_back(0.2 * i);
  }
  auto loss = [&](std::size_t i) {
    const auto x = tensor::Tensor::scalar(xs[i]);
    const auto y = tensor::Tensor::scalar(ys[i]);
    return tensor::mse_loss(tensor::mul(x, w), y);
  };
  TrainConfig cfg;
  cfg.epochs = 100;
  cfg.lr = 0.05;
  const auto stats = train({w}, loss, xs.size(), cfg);
  EXPECT_LT(stats.final_loss, 1e-4);
  EXPECT_NEAR(w.item(), 2.0, 0.05);
  EXPECT_EQ(stats.epochs_run, 100u);
  EXPECT_EQ(stats.epoch_loss.size(), 100u);
}

TEST(Trainer, EarlyStopViaCallback) {
  tensor::Tensor w = tensor::Tensor::scalar(0.0, true);
  auto loss = [&](std::size_t) {
    return tensor::mse_loss(w, tensor::Tensor::scalar(1.0));
  };
  TrainConfig cfg;
  cfg.epochs = 1000;
  cfg.on_epoch = [](std::size_t epoch, double) { return epoch < 4; };
  const auto stats = train({w}, loss, 4, cfg);
  EXPECT_EQ(stats.epochs_run, 5u);
}

TEST(Trainer, LossHistoryMonotoneOnConvexProblem) {
  tensor::Tensor w = tensor::Tensor::scalar(-3.0, true);
  auto loss = [&](std::size_t) {
    return tensor::mse_loss(w, tensor::Tensor::scalar(2.0));
  };
  TrainConfig cfg;
  cfg.epochs = 30;
  cfg.lr = 0.1;
  cfg.batch_size = 4;
  const auto stats = train({w}, loss, 4, cfg);
  EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());
}

TEST(Trainer, TrainsTinyGnnOnGraphRegression) {
  // Two graphs with different node features, distinct targets: the model
  // must separate them.
  auto make_graph = [](double feat, double target) {
    Graph g;
    g.num_nodes = 3;
    g.node_dim = 2;
    g.edge_dim = 1;
    g.edge_src = {0, 1, 1, 2};
    g.edge_dst = {1, 0, 2, 1};
    g.node_features = {feat, 0, feat, 1, feat, 2};
    g.edge_features = {0.5, 0.5, 0.5, 0.5};
    g.graph_targets = {target};
    return g;
  };
  std::vector<Graph> data = {make_graph(0.0, -0.5), make_graph(1.0, 0.5)};

  numeric::Rng rng(3);
  RelGatConfig cfg = iv_predictor_config(2, 1, 8);
  RelGatModel model(cfg, rng);
  auto loss = [&](std::size_t i) {
    return tensor::mse_loss(model.forward(data[i]), data[i].graph_target_tensor());
  };
  TrainConfig tc;
  tc.epochs = 150;
  tc.lr = 1e-2;
  tc.batch_size = 2;
  const auto stats = train(model.parameters(), loss, data.size(), tc);
  EXPECT_LT(stats.final_loss, 1e-3);
  EXPECT_NEAR(model.forward(data[0]).item(), -0.5, 0.1);
  EXPECT_NEAR(model.forward(data[1]).item(), 0.5, 0.1);
}

}  // namespace
}  // namespace stco::gnn
