#include "src/gnn/layers.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stco::gnn {
namespace {

/// Tiny 3-node path graph 0 - 1 - 2 (both directions) with 2-dim edges.
Graph path_graph() {
  Graph g;
  g.num_nodes = 3;
  g.node_dim = 4;
  g.edge_dim = 2;
  g.edge_src = {0, 1, 1, 2};
  g.edge_dst = {1, 0, 2, 1};
  g.node_features = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2};
  g.edge_features = {1, 0, -1, 0, 1, 0, -1, 0};
  g.check();
  return g;
}

TEST(Graph, CheckDetectsBadIndices) {
  Graph g = path_graph();
  g.edge_src[0] = 7;
  EXPECT_THROW(g.check(), std::invalid_argument);
}

TEST(Graph, CheckDetectsFeatureSizeMismatch) {
  Graph g = path_graph();
  g.node_features.pop_back();
  EXPECT_THROW(g.check(), std::invalid_argument);
}

TEST(Linear, ShapeAndBias) {
  numeric::Rng rng(1);
  Linear lin(4, 3, rng);
  const auto y = lin.forward(tensor::Tensor::zeros(2, 4));
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 3u);
  // Zero input -> bias (zero-initialized).
  for (double v : y.value()) EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_EQ(lin.parameters().size(), 2u);
}

TEST(Mlp, LayerCountAndShapes) {
  numeric::Rng rng(2);
  Mlp mlp({4, 8, 8, 1}, rng);
  EXPECT_EQ(mlp.num_layers(), 3u);
  const auto y = mlp.forward(tensor::Tensor::full(5, 4, 0.3));
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 1u);
  EXPECT_EQ(mlp.parameters().size(), 6u);
  EXPECT_THROW(Mlp({4}, rng), std::invalid_argument);
}

TEST(GcnLayer, OutputShapeAndFiniteValues) {
  numeric::Rng rng(3);
  const Graph g = path_graph();
  GcnLayer gcn(4, 6, rng);
  const auto y = gcn.forward(g.node_tensor(), g);
  EXPECT_EQ(y.rows(), 3u);
  EXPECT_EQ(y.cols(), 6u);
  for (double v : y.value()) EXPECT_TRUE(std::isfinite(v));
}

TEST(GcnLayer, IsolatedNodeGetsSelfLoopOnly) {
  numeric::Rng rng(4);
  Graph g;
  g.num_nodes = 2;
  g.node_dim = 2;
  g.edge_dim = 1;
  g.node_features = {1.0, 2.0, 0.0, 0.0};
  GcnLayer gcn(2, 2, rng, Activation::kNone);
  const auto y = gcn.forward(g.node_tensor(), g);
  // Node 1 has zero features and no neighbours: output is the bias (0).
  EXPECT_DOUBLE_EQ(y(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(y(1, 1), 0.0);
}

TEST(RelGatLayer, ShapeAndHeadDivisibility) {
  numeric::Rng rng(5);
  const Graph g = path_graph();
  RelGatLayer gat(4, 2, 8, 2, rng);
  const auto y = gat.forward(g.node_tensor(), g);
  EXPECT_EQ(y.rows(), 3u);
  EXPECT_EQ(y.cols(), 8u);
  EXPECT_THROW(RelGatLayer(4, 2, 7, 2, rng), std::invalid_argument);
}

TEST(RelGatLayer, EdgeFeaturesAffectOutput) {
  numeric::Rng rng(6);
  Graph g = path_graph();
  RelGatLayer gat(4, 2, 4, 1, rng);
  const auto y1 = gat.forward(g.node_tensor(), g).value();
  for (auto& e : g.edge_features) e *= -3.0;
  const auto y2 = gat.forward(g.node_tensor(), g).value();
  double diff = 0.0;
  for (std::size_t i = 0; i < y1.size(); ++i) diff += std::fabs(y1[i] - y2[i]);
  EXPECT_GT(diff, 1e-6);
}

TEST(RelGatLayer, GradientsFlowToAllParameters) {
  numeric::Rng rng(7);
  const Graph g = path_graph();
  RelGatLayer gat(4, 2, 4, 2, rng);
  const auto y = gat.forward(g.node_tensor(), g);
  tensor::sum_all(tensor::mul(y, y)).backward();
  for (const auto& p : gat.parameters()) {
    double gsum = 0.0;
    for (double v : p.grad()) gsum += std::fabs(v);
    EXPECT_GT(gsum, 0.0) << "a parameter received no gradient";
  }
}

TEST(LayerNorm, NormalizesAndIsTrainable) {
  LayerNorm ln(3);
  const auto x = tensor::Tensor::from_data({1, 2, 3}, 1, 3);
  const auto y = ln.forward(x);
  double m = 0;
  for (double v : y.value()) m += v;
  EXPECT_NEAR(m, 0.0, 1e-9);
  EXPECT_EQ(ln.parameters().size(), 2u);
}

}  // namespace
}  // namespace stco::gnn
