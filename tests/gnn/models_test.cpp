#include "src/gnn/models.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stco::gnn {
namespace {

Graph grid_graph(std::size_t n, std::size_t node_dim, std::size_t edge_dim) {
  Graph g;
  g.num_nodes = n;
  g.node_dim = node_dim;
  g.edge_dim = edge_dim;
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    g.edge_src.push_back(i);
    g.edge_dst.push_back(i + 1);
    g.edge_src.push_back(i + 1);
    g.edge_dst.push_back(i);
  }
  g.node_features.assign(n * node_dim, 0.1);
  g.edge_features.assign(g.num_edges() * edge_dim, 0.2);
  g.check();
  return g;
}

TEST(RelGatModel, NodeRegressionShape) {
  numeric::Rng rng(1);
  RelGatConfig cfg = poisson_emulator_config(6, 3, 8);
  cfg.num_layers = 3;  // keep the test fast
  RelGatModel model(cfg, rng);
  const Graph g = grid_graph(5, 6, 3);
  const auto y = model.forward(g);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 1u);
}

TEST(RelGatModel, GraphRegressionShape) {
  numeric::Rng rng(2);
  const RelGatConfig cfg = iv_predictor_config(6, 3, 8);
  RelGatModel model(cfg, rng);
  const Graph g = grid_graph(7, 6, 3);
  const auto y = model.forward(g);
  EXPECT_EQ(y.rows(), 1u);
  EXPECT_EQ(y.cols(), 1u);
}

TEST(RelGatModel, PaperArchitectureShapes) {
  // Paper: Poisson emulator 12-layer 2-head; IV predictor 3-layer 1-head
  // with a 4-layer MLP head.
  const RelGatConfig pe = poisson_emulator_config(6, 3);
  EXPECT_EQ(pe.num_layers, 12u);
  EXPECT_EQ(pe.heads, 2u);
  EXPECT_FALSE(pe.graph_regression);
  const RelGatConfig iv = iv_predictor_config(6, 3);
  EXPECT_EQ(iv.num_layers, 3u);
  EXPECT_EQ(iv.heads, 1u);
  EXPECT_TRUE(iv.graph_regression);
  EXPECT_EQ(iv.mlp_hidden.size(), 3u);  // 3 hidden + output = 4 layers
}

TEST(RelGatModel, ParameterCountScalesWithWidth) {
  numeric::Rng rng(3);
  RelGatConfig small = poisson_emulator_config(6, 3, 8);
  small.num_layers = 2;
  RelGatConfig big = small;
  big.hidden = 16;
  const RelGatModel m_small(small, rng);
  const RelGatModel m_big(big, rng);
  EXPECT_GT(m_big.num_parameters(), 2 * m_small.num_parameters());
}

TEST(RelGatModel, PaperScaleParameterCounts) {
  // The paper pairs a ~1 M-parameter deep Poisson emulator with a ~0.15 M
  // IV predictor (ratio ~6.7x). At our CPU-scale widths (deep model wider
  // than the shallow one, as the paper's counts imply) the ratio holds.
  numeric::Rng rng(4);
  const RelGatModel pe(poisson_emulator_config(20, 3, 64), rng);
  const RelGatModel iv(iv_predictor_config(20, 3, 32), rng);
  EXPECT_GT(pe.num_parameters(), 3 * iv.num_parameters());
  EXPECT_LT(pe.num_parameters(), 12 * iv.num_parameters());
}

TEST(RelGatModel, DeterministicForSeed) {
  const Graph g = grid_graph(4, 6, 3);
  numeric::Rng rng1(9), rng2(9);
  RelGatConfig cfg = iv_predictor_config(6, 3, 8);
  const RelGatModel m1(cfg, rng1), m2(cfg, rng2);
  EXPECT_DOUBLE_EQ(m1.forward(g).item(), m2.forward(g).item());
}

TEST(RelGatModel, EdgeFeatureAblationChangesOutput) {
  numeric::Rng rng(10);
  RelGatConfig cfg = iv_predictor_config(6, 3, 8);
  cfg.use_edge_features = false;
  const RelGatModel ablated(cfg, rng);
  Graph g = grid_graph(4, 6, 3);
  const double y1 = ablated.forward(g).item();
  for (auto& e : g.edge_features) e = 99.0;  // must be ignored
  const double y2 = ablated.forward(g).item();
  EXPECT_DOUBLE_EQ(y1, y2);
}

}  // namespace
}  // namespace stco::gnn
