#include "src/gnn/batch.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace stco::gnn {
namespace {

Graph make_graph(std::size_t n, double feat, double target, std::uint64_t seed) {
  numeric::Rng rng(seed);
  Graph g;
  g.num_nodes = n;
  g.node_dim = 3;
  g.edge_dim = 2;
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    g.edge_src.push_back(i);
    g.edge_dst.push_back(i + 1);
    g.edge_src.push_back(i + 1);
    g.edge_dst.push_back(i);
  }
  g.node_features.resize(n * 3);
  for (auto& v : g.node_features) v = feat + 0.1 * rng.normal();
  g.edge_features.assign(g.num_edges() * 2, 0.5);
  g.graph_targets = {target};
  return g;
}

TEST(Batch, MergePreservesStructure) {
  const std::vector<Graph> gs = {make_graph(3, 0.0, -1.0, 1), make_graph(5, 1.0, 1.0, 2),
                                 make_graph(2, 2.0, 0.0, 3)};
  const auto b = merge_graphs(gs);
  EXPECT_EQ(b.num_graphs, 3u);
  EXPECT_EQ(b.merged.num_nodes, 10u);
  EXPECT_EQ(b.merged.num_edges(), gs[0].num_edges() + gs[1].num_edges() +
                                      gs[2].num_edges());
  EXPECT_EQ(b.graph_id.size(), 10u);
  EXPECT_EQ(b.graph_id[0], 0u);
  EXPECT_EQ(b.graph_id[3], 1u);
  EXPECT_EQ(b.graph_id[9], 2u);
  // No cross-graph edges: every edge stays within its graph's id range.
  for (std::size_t e = 0; e < b.merged.num_edges(); ++e)
    EXPECT_EQ(b.graph_id[b.merged.edge_src[e]], b.graph_id[b.merged.edge_dst[e]]);
  ASSERT_EQ(b.graph_targets.size(), 3u);
  EXPECT_DOUBLE_EQ(b.graph_targets[1], 1.0);
}

TEST(Batch, EmptyBatchThrows) {
  EXPECT_THROW(merge_graphs({}), std::invalid_argument);
}

TEST(Batch, WidthMismatchThrows) {
  auto a = make_graph(3, 0.0, 0.0, 1);
  auto b = make_graph(3, 0.0, 0.0, 2);
  b.node_dim = 4;
  b.node_features.resize(12);
  std::vector<Graph> gs = {a, b};
  EXPECT_THROW(merge_graphs(gs), std::invalid_argument);
}

TEST(Batch, BatchedForwardMatchesPerGraphForward) {
  const std::vector<Graph> gs = {make_graph(4, 0.2, 0.0, 4), make_graph(6, -0.4, 0.0, 5),
                                 make_graph(3, 1.0, 0.0, 6)};
  numeric::Rng rng(9);
  const RelGatModel model(iv_predictor_config(3, 2, 8), rng);
  const auto batch = merge_graphs(gs);
  const auto out = forward_batched(model, batch);
  ASSERT_EQ(out.rows(), 3u);
  for (std::size_t i = 0; i < gs.size(); ++i) {
    const double single = model.forward(gs[i]).item();
    EXPECT_NEAR(out(i, 0), single, 1e-9) << "graph " << i;
  }
}

TEST(Batch, NodeRegressionForwardOnMergedMatches) {
  const std::vector<Graph> gs = {make_graph(4, 0.2, 0.0, 7), make_graph(3, -0.1, 0.0, 8)};
  numeric::Rng rng(10);
  RelGatConfig cfg = poisson_emulator_config(3, 2, 8);
  cfg.num_layers = 3;
  const RelGatModel model(cfg, rng);
  const auto batch = merge_graphs(gs);
  const auto merged_out = model.forward(batch.merged);
  const auto a = model.forward(gs[0]);
  const auto b = model.forward(gs[1]);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(merged_out(i, 0), a(i, 0), 1e-9);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(merged_out(4 + i, 0), b(i, 0), 1e-9);
}

TEST(Batch, NodeRegressionModelRejectsPooledForward) {
  numeric::Rng rng(11);
  RelGatConfig cfg = poisson_emulator_config(3, 2, 8);
  cfg.num_layers = 2;
  const RelGatModel model(cfg, rng);
  const std::vector<Graph> gs = {make_graph(3, 0.0, 0.0, 12)};
  const auto batch = merge_graphs(gs);
  EXPECT_THROW(forward_batched(model, batch), std::invalid_argument);
}

}  // namespace
}  // namespace stco::gnn
