// Parity suite for the inference engine (src/gnn/infer): the compiled plan
// must match the training-path forward to 1e-12 relative on every config the
// repo ships (node/graph regression, edge ablation, no-norm/no-residual),
// and its batched output must be bit-identical across thread counts —
// parallelism is over whole graphs, so the per-graph arithmetic never
// changes shape.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/gnn/batch.hpp"
#include "src/gnn/infer/gcn_plan.hpp"
#include "src/gnn/infer/predictor.hpp"
#include "src/gnn/models.hpp"
#include "src/obs/obs.hpp"
#include "src/surrogate/surrogate.hpp"
#include "src/tensor/ops.hpp"

namespace stco::gnn {
namespace {

constexpr std::size_t kNodeDim = 6;
constexpr std::size_t kEdgeDim = 3;

Graph make_graph(std::size_t n, std::uint64_t seed, bool with_edges = true) {
  numeric::Rng rng(seed);
  Graph g;
  g.num_nodes = n;
  g.node_dim = kNodeDim;
  g.edge_dim = kEdgeDim;
  if (with_edges) {
    for (std::size_t i = 0; i + 1 < n; ++i) {
      g.edge_src.push_back(i);
      g.edge_dst.push_back(i + 1);
      g.edge_src.push_back(i + 1);
      g.edge_dst.push_back(i);
    }
    // A couple of long-range edges so attention sees fan-in > 1.
    if (n > 3) {
      g.edge_src.push_back(0);
      g.edge_dst.push_back(n - 1);
    }
  }
  g.node_features.resize(n * kNodeDim);
  for (auto& v : g.node_features) v = rng.normal();
  g.edge_features.resize(g.num_edges() * kEdgeDim);
  for (auto& v : g.edge_features) v = rng.normal();
  g.node_targets.assign(n, 0.0);
  g.graph_targets = {0.0};
  return g;
}

double rel_err(double a, double b) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-12});
  return std::fabs(a - b) / scale;
}

void expect_parity(const std::vector<double>& plan_out,
                   const std::vector<double>& train_out, double tol = 1e-12) {
  ASSERT_EQ(plan_out.size(), train_out.size());
  for (std::size_t i = 0; i < plan_out.size(); ++i)
    EXPECT_LE(rel_err(plan_out[i], train_out[i]), tol)
        << "i=" << i << " plan=" << plan_out[i] << " train=" << train_out[i];
}

RelGatConfig node_cfg() {
  RelGatConfig cfg = poisson_emulator_config(kNodeDim, kEdgeDim, /*hidden=*/12);
  cfg.num_layers = 3;  // keep the suite fast; all layer kinds still execute
  return cfg;
}

RelGatConfig graph_cfg() {
  return iv_predictor_config(kNodeDim, kEdgeDim, /*hidden=*/12);
}

TEST(InferParity, SingleGraphNodeRegression) {
  numeric::Rng rng(7);
  const RelGatModel model(node_cfg(), rng);
  Predictor pred;
  pred.compile(model);
  const Graph g = make_graph(9, 11);
  expect_parity(pred.predict_one(g), model.forward(g).value());
}

TEST(InferParity, SingleGraphGraphRegression) {
  numeric::Rng rng(8);
  const RelGatModel model(graph_cfg(), rng);
  Predictor pred;
  pred.compile(model);
  const Graph g = make_graph(7, 21);
  expect_parity(pred.predict_one(g), model.forward(g).value());
  EXPECT_EQ(pred.predict_scalar(g), pred.predict_one(g)[0]);
}

TEST(InferParity, EdgeAblationAndPlainTrunkVariants) {
  for (const bool edge_feats : {true, false}) {
    for (const bool norm_res : {true, false}) {
      RelGatConfig cfg = node_cfg();
      cfg.use_edge_features = edge_feats;
      cfg.use_layer_norm = norm_res;
      cfg.use_residual = norm_res;
      numeric::Rng rng(5);
      const RelGatModel model(cfg, rng);
      Predictor pred;
      pred.compile(model);
      const Graph g = make_graph(6, 31);
      SCOPED_TRACE(testing::Message() << "edge_feats=" << edge_feats
                                      << " norm_res=" << norm_res);
      expect_parity(pred.predict_one(g), model.forward(g).value());
    }
  }
}

TEST(InferParity, EmptyEdgeGraphs) {
  numeric::Rng rng(9);
  const RelGatModel model(node_cfg(), rng);
  Predictor pred;
  pred.compile(model);
  const Graph lone = make_graph(4, 41, /*with_edges=*/false);
  expect_parity(pred.predict_one(lone), model.forward(lone).value());
  // And mixed into a batch next to connected graphs.
  const std::vector<Graph> gs = {make_graph(5, 42), lone, make_graph(3, 43)};
  std::vector<double> ref;
  for (const auto& g : gs) {
    const auto v = model.forward(g).value();
    ref.insert(ref.end(), v.begin(), v.end());
  }
  expect_parity(pred.predict(gs), ref);
}

TEST(InferParity, BatchOf64MatchesPerGraphTrainingForward) {
  numeric::Rng rng(10);
  const RelGatModel model(graph_cfg(), rng);
  Predictor pred;
  pred.compile(model);
  std::vector<Graph> gs;
  for (std::size_t i = 0; i < 64; ++i) gs.push_back(make_graph(3 + i % 7, 100 + i));
  std::vector<double> ref;
  for (const auto& g : gs) {
    const auto v = model.forward(g).value();
    ref.insert(ref.end(), v.begin(), v.end());
  }
  expect_parity(pred.predict(gs), ref);
}

TEST(InferParity, BitIdenticalAcrossThreadCounts) {
  numeric::Rng rng(12);
  const RelGatModel model(node_cfg(), rng);
  Predictor pred;
  pred.compile(model);
  std::vector<Graph> gs;
  for (std::size_t i = 0; i < 64; ++i)
    gs.push_back(make_graph(2 + i % 9, 200 + i, /*with_edges=*/i % 5 != 0));
  const std::vector<double> serial = pred.predict(gs);
  for (const std::size_t threads : {2u, 8u}) {
    const exec::Context ctx(threads);
    const std::vector<double> parallel = pred.predict(gs, ctx);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      EXPECT_EQ(parallel[i], serial[i]) << "threads=" << threads << " i=" << i;
  }
}

TEST(InferParity, RepeatedCallsReuseArenaWithoutDrift) {
  numeric::Rng rng(13);
  const RelGatModel model(graph_cfg(), rng);
  Predictor pred;
  pred.compile(model);
  const Graph g = make_graph(8, 77);
  const auto first = pred.predict_one(g);
  for (int i = 0; i < 5; ++i) {
    const auto again = pred.predict_one(g);
    ASSERT_EQ(again.size(), first.size());
    for (std::size_t j = 0; j < first.size(); ++j) EXPECT_EQ(again[j], first[j]);
  }
}

TEST(InferParity, GcnPlanMatchesTrainingChain) {
  // The charlib trunk at gnn level: Linear -> GCN stack -> mean pool ->
  // per-metric MLP heads, compiled via compile_gcn_plan.
  numeric::Rng rng(14);
  const Linear proj(kNodeDim, 10, rng);
  std::vector<GcnLayer> layers;
  for (int i = 0; i < 3; ++i) layers.emplace_back(10, 10, rng, Activation::kRelu);
  std::vector<Mlp> heads;
  for (int i = 0; i < 4; ++i)
    heads.emplace_back(std::vector<std::size_t>{10, 8, 1}, rng);
  const infer::GcnPlan plan = infer::compile_gcn_plan(proj, layers, heads);
  ASSERT_TRUE(plan.compiled());

  std::vector<Graph> gs = {make_graph(6, 51), make_graph(4, 52),
                           make_graph(5, 53, /*with_edges=*/false)};
  const std::size_t head_ids[] = {0, 3};
  const auto batch = merge_graphs(gs);
  const auto out = plan.run(batch, head_ids, infer::scratch_arena());
  ASSERT_EQ(out.size(), gs.size() * 2);
  for (std::size_t gi = 0; gi < gs.size(); ++gi) {
    tensor::Tensor h = proj.forward(gs[gi].node_tensor());
    for (const auto& l : layers) h = l.forward(h, gs[gi]);
    const tensor::Tensor pooled = tensor::mean_rows(h);
    for (std::size_t hj = 0; hj < 2; ++hj) {
      const double ref = heads[head_ids[hj]].forward(pooled).item();
      EXPECT_LE(rel_err(out[gi * 2 + hj], ref), 1e-12);
    }
  }
  // run_one agrees with the batched path bit-for-bit.
  const auto one = plan.run_one(gs[0], head_ids, infer::scratch_arena());
  EXPECT_EQ(one[0], out[0]);
  EXPECT_EQ(one[1], out[1]);
}

TEST(InferParity, WarmStartCompilesPlanExactlyOncePerEngine) {
  surrogate::SurrogateConfig cfg;
  cfg.poisson_hidden = 8;
  cfg.iv_hidden = 8;
  const surrogate::TcadSurrogate trained(cfg);
  trained.save_weights("/tmp/stco_infer_parity_weights.bin");

  surrogate::TcadSurrogate warm(cfg);
  const std::uint64_t before = obs::counter("gnn.infer.plan_compiles").value();
  const auto status = warm.try_load_weights("/tmp/stco_infer_parity_weights.bin");
  ASSERT_TRUE(persist::ok(status));
  // One rebuild per engine (poisson + iv), nothing more. The counter only
  // counts when the obs layer is compiled in.
  if constexpr (obs::kEnabled) {
    EXPECT_EQ(obs::counter("gnn.infer.plan_compiles").value(), before + 2);
  }
  EXPECT_EQ(warm.poisson_predictor().fingerprint(),
            trained.poisson_predictor().fingerprint());
  EXPECT_EQ(warm.iv_predictor().fingerprint(),
            trained.iv_predictor().fingerprint());
}

TEST(InferParity, FingerprintTracksWeightState) {
  numeric::Rng rng_a(1), rng_b(2);
  const RelGatModel a(node_cfg(), rng_a), b(node_cfg(), rng_b);
  Predictor pa, pb, pa2;
  pa.compile(a);
  pb.compile(b);
  pa2.compile(a);
  EXPECT_NE(pa.fingerprint(), 0u);
  EXPECT_EQ(pa.fingerprint(), pa2.fingerprint());
  EXPECT_NE(pa.fingerprint(), pb.fingerprint());
}

TEST(InferParity, DimensionMismatchThrowsBeforeExecution) {
  numeric::Rng rng(15);
  const RelGatModel model(node_cfg(), rng);
  Predictor pred;
  pred.compile(model);
  Graph g = make_graph(4, 61);
  g.node_dim = kNodeDim + 1;
  g.node_features.resize(g.num_nodes * g.node_dim);
  EXPECT_THROW((void)pred.predict_one(g), std::invalid_argument);
}

}  // namespace
}  // namespace stco::gnn
