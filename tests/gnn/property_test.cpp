// Parameterized architecture sweeps for the GNN stack: shapes, gradient
// flow, and permutation behaviour must hold for every configuration.

#include <gtest/gtest.h>

#include <cmath>

#include "src/gnn/models.hpp"
#include "src/tensor/ops.hpp"

namespace stco::gnn {
namespace {

struct ArchCase {
  std::size_t layers, heads, hidden;
  bool graph_regression;
};

Graph ring_graph(std::size_t n, std::size_t node_dim, std::size_t edge_dim,
                 std::uint64_t seed) {
  numeric::Rng rng(seed);
  Graph g;
  g.num_nodes = n;
  g.node_dim = node_dim;
  g.edge_dim = edge_dim;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t j = (i + 1) % n;
    g.edge_src.push_back(i);
    g.edge_dst.push_back(j);
    g.edge_src.push_back(j);
    g.edge_dst.push_back(i);
  }
  g.node_features.resize(n * node_dim);
  for (auto& v : g.node_features) v = rng.uniform(-1, 1);
  g.edge_features.resize(g.num_edges() * edge_dim);
  for (auto& v : g.edge_features) v = rng.uniform(-1, 1);
  return g;
}

class ArchSweep : public ::testing::TestWithParam<ArchCase> {
 protected:
  RelGatConfig config() const {
    const auto& c = GetParam();
    RelGatConfig cfg;
    cfg.node_dim = 6;
    cfg.edge_dim = 3;
    cfg.hidden = c.hidden;
    cfg.heads = c.heads;
    cfg.num_layers = c.layers;
    cfg.mlp_hidden = {c.hidden};
    cfg.out_dim = 2;
    cfg.graph_regression = c.graph_regression;
    return cfg;
  }
};

TEST_P(ArchSweep, OutputShape) {
  numeric::Rng rng(1);
  const RelGatModel model(config(), rng);
  const Graph g = ring_graph(7, 6, 3, 2);
  const auto y = model.forward(g);
  EXPECT_EQ(y.rows(), GetParam().graph_regression ? 1u : 7u);
  EXPECT_EQ(y.cols(), 2u);
  for (double v : y.value()) EXPECT_TRUE(std::isfinite(v));
}

TEST_P(ArchSweep, AllParametersReceiveGradient) {
  numeric::Rng rng(2);
  const RelGatModel model(config(), rng);
  const Graph g = ring_graph(6, 6, 3, 3);
  const auto y = model.forward(g);
  tensor::sum_all(tensor::mul(y, y)).backward();
  std::size_t dead = 0;
  for (const auto& p : model.parameters()) {
    double s = 0.0;
    for (double v : p.grad()) s += std::fabs(v);
    if (s == 0.0) ++dead;
  }
  // Allow the rare dead ReLU unit but not systematic disconnection.
  EXPECT_LE(dead, model.parameters().size() / 8);
}

TEST_P(ArchSweep, GraphPoolingIsNodeOrderInvariant) {
  if (!GetParam().graph_regression) GTEST_SKIP();
  numeric::Rng rng(4);
  const RelGatModel model(config(), rng);
  Graph g = ring_graph(5, 6, 3, 5);
  const double y1 = model.forward(g).value()[0];

  // Relabel nodes with a rotation; same graph, permuted ids.
  Graph h = g;
  auto perm = [&](std::uint32_t v) { return (v + 2) % 5; };
  for (auto& s : h.edge_src) s = perm(s);
  for (auto& d : h.edge_dst) d = perm(d);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t k = 0; k < 6; ++k)
      h.node_features[perm(static_cast<std::uint32_t>(i)) * 6 + k] =
          g.node_features[i * 6 + k];
  const double y2 = model.forward(h).value()[0];
  EXPECT_NEAR(y1, y2, 1e-9);
}

TEST_P(ArchSweep, ParameterCountMatchesAnalyticFormula) {
  numeric::Rng rng(6);
  const auto cfg = config();
  const RelGatModel model(cfg, rng);
  const std::size_t head_dim = cfg.hidden / cfg.heads;
  std::size_t expected = cfg.node_dim * cfg.hidden + cfg.hidden;  // input proj
  expected += cfg.num_layers *
              (cfg.heads * (cfg.hidden * head_dim + cfg.edge_dim * head_dim +
                            2 * head_dim) +
               cfg.hidden);  // GAT layers (+bias)
  if (cfg.use_layer_norm) expected += cfg.num_layers * 2 * cfg.hidden;
  expected += cfg.hidden * cfg.mlp_hidden[0] + cfg.mlp_hidden[0] +
              cfg.mlp_hidden[0] * cfg.out_dim + cfg.out_dim;  // head MLP
  EXPECT_EQ(model.num_parameters(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, ArchSweep,
    ::testing::Values(ArchCase{1, 1, 8, false}, ArchCase{3, 1, 8, true},
                      ArchCase{3, 2, 8, false}, ArchCase{6, 2, 16, true},
                      ArchCase{12, 2, 16, false}, ArchCase{2, 4, 16, true}),
    [](const ::testing::TestParamInfo<ArchCase>& info) {
      const auto& c = info.param;
      return "L" + std::to_string(c.layers) + "H" + std::to_string(c.heads) + "W" +
             std::to_string(c.hidden) + (c.graph_regression ? "graph" : "node");
    });

}  // namespace
}  // namespace stco::gnn
