// Parameterized characterization sweep across technologies (the paper's
// closing claim: "its adaptability allows easy application to other
// technologies like IGZO and LTPS"): the full measurement pipeline must
// yield physical results for every material system without changes.

#include <gtest/gtest.h>

#include "src/cells/characterize.hpp"

namespace stco::cells {
namespace {

class TechnologySweep : public ::testing::TestWithParam<compact::TechnologyPoint> {
 protected:
  CharConfig config() const {
    CharConfig cfg;
    cfg.tech = GetParam();
    // Slow technologies (IGZO) need a longer schedule quantum.
    cfg.time_unit = 250e-9;
    cfg.dt = 4e-9;
    cfg.input_slew = 25e-9;
    return cfg;
  }
};

TEST_P(TechnologySweep, InverterCharacterizes) {
  const auto r = characterize_cell(find_cell("INV"), config());
  ASSERT_GE(r.arcs.size(), 2u);
  for (const auto& arc : r.arcs) {
    EXPECT_GT(arc.delay, 0.0);
    EXPECT_LT(arc.delay, 2e-6);
    EXPECT_GT(arc.output_slew, 0.0);
    EXPECT_GT(arc.flip_energy, 0.0);
  }
  EXPECT_GT(r.leakage_power, 0.0);
  EXPECT_GT(r.input_capacitance.at("A"), 1e-16);
}

TEST_P(TechnologySweep, Nand2DelayOrderingAcrossLoads) {
  CharConfig light = config(), heavy = config();
  light.load_cap = 20e-15;
  heavy.load_cap = 120e-15;
  const auto rl = characterize_cell(find_cell("NAND2"), light);
  const auto rh = characterize_cell(find_cell("NAND2"), heavy);
  ASSERT_FALSE(rl.arcs.empty());
  ASSERT_FALSE(rh.arcs.empty());
  EXPECT_GT(rh.worst_delay(), rl.worst_delay());
}

TEST_P(TechnologySweep, DffCapturesInEveryTechnology) {
  const auto r = characterize_cell(find_cell("DFF"), config());
  EXPECT_GE(r.arcs.size(), 1u);
  EXPECT_GT(r.min_setup, 0.0);
  EXPECT_GT(r.min_pulse_width, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Technologies, TechnologySweep,
    ::testing::Values(compact::cnt_tech(), compact::ltps_tech(),
                      compact::igzo_tech()),
    [](const ::testing::TestParamInfo<compact::TechnologyPoint>& info) {
      return tcad::to_string(info.param.kind);
    });

}  // namespace
}  // namespace stco::cells
