#include "src/cells/library.hpp"

#include <gtest/gtest.h>

#include <set>

namespace stco::cells {
namespace {

TEST(Library, HasExactly35Cells) {
  EXPECT_EQ(standard_library().size(), 35u);
  EXPECT_EQ(combinational_names().size(), 30u);
  EXPECT_EQ(sequential_names().size(), 5u);
}

TEST(Library, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& c : standard_library()) names.insert(c.name);
  EXPECT_EQ(names.size(), 35u);
}

TEST(Library, FindCellWorksAndThrows) {
  EXPECT_EQ(find_cell("NAND2").name, "NAND2");
  EXPECT_THROW(find_cell("NAND9"), std::invalid_argument);
}

TEST(Library, TransistorCountsMatchTopology) {
  EXPECT_EQ(find_cell("INV").num_transistors(), 2u);
  EXPECT_EQ(find_cell("NAND2").num_transistors(), 4u);
  EXPECT_EQ(find_cell("NAND4").num_transistors(), 8u);
  EXPECT_EQ(find_cell("AND2").num_transistors(), 6u);
  EXPECT_EQ(find_cell("XOR2").num_transistors(), 12u);
  EXPECT_EQ(find_cell("AOI22").num_transistors(), 8u);
  // Master-slave TG flip-flop: 5 inverters + 4 TGs = 18 devices.
  EXPECT_EQ(find_cell("DFF").num_transistors(), 18u);
}

TEST(Library, SequentialCellsDeclareClock) {
  for (const auto& name : sequential_names()) {
    const auto& c = find_cell(name);
    EXPECT_TRUE(c.sequential);
    EXPECT_FALSE(c.clock_pin.empty());
    EXPECT_EQ(c.data_inputs().size(), c.inputs.size() - 1);
  }
}

// Exhaustive truth-table checks for representative combinational cells.
std::map<std::string, bool> bits(const CellDef& c, unsigned mask) {
  std::map<std::string, bool> m;
  for (std::size_t i = 0; i < c.inputs.size(); ++i) m[c.inputs[i]] = (mask >> i) & 1;
  return m;
}

TEST(Logic, Inverters) {
  for (const char* n : {"INV", "INVX2", "INVX4"}) {
    const auto& c = find_cell(n);
    EXPECT_TRUE(eval_combinational(c, {{"A", false}}));
    EXPECT_FALSE(eval_combinational(c, {{"A", true}}));
  }
  for (const char* n : {"BUF", "BUFX2", "BUFX4"}) {
    const auto& c = find_cell(n);
    EXPECT_FALSE(eval_combinational(c, {{"A", false}}));
    EXPECT_TRUE(eval_combinational(c, {{"A", true}}));
  }
}

TEST(Logic, NandNorAndOrFamilies) {
  for (std::size_t k : {2u, 3u, 4u}) {
    const auto& nand_c = find_cell("NAND" + std::to_string(k));
    const auto& nor_c = find_cell("NOR" + std::to_string(k));
    const auto& and_c = find_cell("AND" + std::to_string(k));
    const auto& or_c = find_cell("OR" + std::to_string(k));
    for (unsigned m = 0; m < (1u << k); ++m) {
      bool all = true, any = false;
      for (std::size_t i = 0; i < k; ++i) {
        all &= bool((m >> i) & 1);
        any |= bool((m >> i) & 1);
      }
      EXPECT_EQ(eval_combinational(nand_c, bits(nand_c, m)), !all);
      EXPECT_EQ(eval_combinational(nor_c, bits(nor_c, m)), !any);
      EXPECT_EQ(eval_combinational(and_c, bits(and_c, m)), all);
      EXPECT_EQ(eval_combinational(or_c, bits(or_c, m)), any);
    }
  }
}

TEST(Logic, XorXnor) {
  const auto& x = find_cell("XOR2");
  const auto& xn = find_cell("XNOR2");
  for (unsigned m = 0; m < 4; ++m) {
    const bool a = m & 1, b = (m >> 1) & 1;
    EXPECT_EQ(eval_combinational(x, bits(x, m)), a != b);
    EXPECT_EQ(eval_combinational(xn, bits(xn, m)), a == b);
  }
}

TEST(Logic, AoiOaiFamilies) {
  const auto& aoi21 = find_cell("AOI21");
  const auto& oai21 = find_cell("OAI21");
  const auto& aoi22 = find_cell("AOI22");
  const auto& oai22 = find_cell("OAI22");
  for (unsigned m = 0; m < 16; ++m) {
    const bool a = m & 1, b = (m >> 1) & 1, c = (m >> 2) & 1, d = (m >> 3) & 1;
    if (m < 8) {
      EXPECT_EQ(eval_combinational(aoi21, bits(aoi21, m)), !((a && b) || c));
      EXPECT_EQ(eval_combinational(oai21, bits(oai21, m)), !((a || b) && c));
    }
    EXPECT_EQ(eval_combinational(aoi22, bits(aoi22, m)), !((a && b) || (c && d)));
    EXPECT_EQ(eval_combinational(oai22, bits(oai22, m)), !((a || b) && (c || d)));
  }
}

TEST(Logic, MuxAndInvertedInputGates) {
  const auto& mux = find_cell("MUX2");
  // inputs: A, B, S -> bit order A=bit0, B=bit1, S=bit2
  for (unsigned m = 0; m < 8; ++m) {
    const bool a = m & 1, b = (m >> 1) & 1, s = (m >> 2) & 1;
    EXPECT_EQ(eval_combinational(mux, bits(mux, m)), s ? b : a);
    const auto& muxi = find_cell("MUX2I");
    EXPECT_EQ(eval_combinational(muxi, bits(muxi, m)), !(s ? b : a));
  }
  const auto& n2b = find_cell("NAND2B");
  const auto& r2b = find_cell("NOR2B");
  for (unsigned m = 0; m < 4; ++m) {
    const bool a = m & 1, b = (m >> 1) & 1;
    EXPECT_EQ(eval_combinational(n2b, bits(n2b, m)), !(!a && b));
    EXPECT_EQ(eval_combinational(r2b, bits(r2b, m)), !(!a || b));
  }
}

TEST(Logic, SequentialCellsRejectCombinationalEval) {
  EXPECT_THROW(eval_combinational(find_cell("DFF"), {{"D", true}, {"CK", false}}),
               std::invalid_argument);
}

TEST(Expr, DeviceCountsAndValidation) {
  EXPECT_EQ(in_("A").num_devices(), 1u);
  EXPECT_EQ(series({in_("A"), in_("B")}).num_devices(), 2u);
  EXPECT_EQ(parallel({series({in_("A"), in_("B")}), in_("C")}).num_devices(), 3u);
  EXPECT_THROW(series({in_("A")}), std::invalid_argument);
  EXPECT_THROW(parallel({}), std::invalid_argument);
  EXPECT_THROW(in_("A").eval({}), std::invalid_argument);
}

}  // namespace
}  // namespace stco::cells
