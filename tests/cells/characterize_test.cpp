#include "src/cells/characterize.hpp"

#include <gtest/gtest.h>

#include "src/spice/engine.hpp"
#include "src/spice/measure.hpp"

namespace stco::cells {
namespace {

CharConfig fast_config() {
  CharConfig cfg;
  cfg.tech = compact::cnt_tech();
  cfg.input_slew = 20e-9;
  cfg.load_cap = 40e-15;
  cfg.time_unit = 150e-9;
  cfg.dt = 3e-9;
  return cfg;
}

/// Characterizations are slow(ish); cache per cell across tests.
const CellCharacterization& charred(const std::string& name) {
  static std::map<std::string, CellCharacterization> cache;
  auto it = cache.find(name);
  if (it == cache.end())
    it = cache.emplace(name, characterize_cell(find_cell(name), fast_config())).first;
  return it->second;
}

TEST(Builder, InverterNetlistShape) {
  spice::Netlist nl;
  const auto built = build_cell(nl, find_cell("INV"), compact::cnt_tech());
  EXPECT_EQ(built.num_transistors, 2u);
  EXPECT_EQ(nl.tfts().size(), 2u);
  EXPECT_TRUE(built.pins.count("A"));
  EXPECT_TRUE(built.pins.count("Y"));
  // One N (source at ground) and one P (source at vdd).
  bool has_n = false, has_p = false;
  for (const auto& t : nl.tfts()) {
    if (t.params.type == compact::TftType::kNType && t.source == spice::kGround)
      has_n = true;
    if (t.params.type == compact::TftType::kPType && t.source == built.vdd) has_p = true;
  }
  EXPECT_TRUE(has_n);
  EXPECT_TRUE(has_p);
}

TEST(Builder, Nand3StacksThreeNfets) {
  spice::Netlist nl;
  const auto built = build_cell(nl, find_cell("NAND3"), compact::cnt_tech());
  EXPECT_EQ(built.num_transistors, 6u);
  std::size_t nfets = 0, pfets = 0;
  for (const auto& t : nl.tfts())
    (t.params.type == compact::TftType::kNType ? nfets : pfets)++;
  EXPECT_EQ(nfets, 3u);
  EXPECT_EQ(pfets, 3u);
}

TEST(Builder, DriveVariantScalesWidth) {
  spice::Netlist nl1, nl4;
  build_cell(nl1, find_cell("INV"), compact::cnt_tech());
  build_cell(nl4, find_cell("INVX4"), compact::cnt_tech());
  EXPECT_NEAR(nl4.tfts()[0].params.width / nl1.tfts()[0].params.width, 4.0, 1e-12);
}

TEST(Builder, PrefixIsolatesInstances) {
  spice::Netlist nl;
  const auto a = build_cell(nl, find_cell("INV"), compact::cnt_tech(), {}, "u1_");
  const auto b = build_cell(nl, find_cell("INV"), compact::cnt_tech(), {}, "u2_");
  EXPECT_NE(a.pins.at("A"), b.pins.at("A"));
  EXPECT_EQ(a.vdd, b.vdd);  // shared supply
}

TEST(Characterize, InverterBasics) {
  const auto& r = charred("INV");
  ASSERT_GE(r.arcs.size(), 2u);
  for (const auto& arc : r.arcs) {
    EXPECT_GT(arc.delay, 0.0);
    EXPECT_LT(arc.delay, 500e-9);
    EXPECT_GT(arc.output_slew, 0.0);
    EXPECT_EQ(arc.output_rising, !arc.input_rising);  // inverting
    EXPECT_GT(arc.flip_energy, 0.0);
  }
  EXPECT_GT(r.leakage_power, 0.0);
  EXPECT_GT(r.input_capacitance.at("A"), 1e-16);
  EXPECT_LT(r.input_capacitance.at("A"), 1e-12);
  EXPECT_TRUE(r.nonflip.empty());  // every inverter input toggle flips Y
  EXPECT_DOUBLE_EQ(r.min_setup, 0.0);
}

TEST(Characterize, Nand2HasNonFlipArcs) {
  const auto& r = charred("NAND2");
  EXPECT_GE(r.arcs.size(), 4u);     // A rise/fall + B rise/fall
  EXPECT_GE(r.nonflip.size(), 4u);  // other input low -> output pinned high
  for (const auto& nf : r.nonflip) EXPECT_GE(nf.energy, 0.0);
  // Non-flip power must be below flip power on average (paper notes dynamic
  // power spans orders of magnitude; internal-only switching is cheaper).
  EXPECT_LT(r.nonflip.front().energy, r.mean_flip_energy());
}

TEST(Characterize, BiggerLoadMeansLongerDelay) {
  CharConfig small = fast_config(), big = fast_config();
  big.load_cap = 4.0 * small.load_cap;
  const auto rs = characterize_cell(find_cell("INV"), small);
  const auto rb = characterize_cell(find_cell("INV"), big);
  EXPECT_GT(rb.worst_delay(), rs.worst_delay());
}

TEST(Characterize, HigherDriveIsFaster) {
  const auto& x1 = charred("INV");
  const auto& x4 = charred("INVX4");
  EXPECT_LT(x4.worst_delay(), x1.worst_delay());
  // And burns more input cap on the driver before it.
  EXPECT_GT(x4.input_capacitance.at("A"), x1.input_capacitance.at("A"));
}

TEST(Characterize, VddAffectsLeakageAndDelay) {
  CharConfig hi = fast_config();
  hi.tech.vdd *= 1.4;
  const auto r_hi = characterize_cell(find_cell("NAND2"), hi);
  const auto& r_lo = charred("NAND2");
  EXPECT_LT(r_hi.worst_delay(), r_lo.worst_delay());  // more drive
}

TEST(Characterize, DffCapturesAndHasConstraints) {
  const auto& r = charred("DFF");
  ASSERT_GE(r.arcs.size(), 1u);  // at least one clk->Q arc captured
  for (const auto& arc : r.arcs) {
    EXPECT_EQ(arc.input_pin, "CK");
    EXPECT_GT(arc.delay, 0.0);
  }
  EXPECT_GT(r.min_setup, 0.0);
  EXPECT_GT(r.min_pulse_width, 0.0);
  EXPECT_GT(r.min_hold, 0.0);
  EXPECT_LT(r.min_setup, 400e-9);
  EXPECT_GT(r.input_capacitance.at("D"), 0.0);
  EXPECT_GT(r.input_capacitance.at("CK"), 0.0);
  ASSERT_EQ(r.nonflip.size(), 1u);
  EXPECT_GT(r.nonflip[0].energy, 0.0);  // master churns while Q holds
}

TEST(Characterize, LatchIsTransparentDToQ) {
  const auto& r = charred("DLATCH");
  ASSERT_GE(r.arcs.size(), 1u);
  for (const auto& arc : r.arcs) EXPECT_EQ(arc.input_pin, "D");
  EXPECT_GT(r.min_setup, 0.0);
}

TEST(Characterize, MetricNamesComplete) {
  EXPECT_STREQ(to_string(Metric::kDelay), "delay");
  EXPECT_STREQ(to_string(Metric::kMinHold), "min_hold");
  EXPECT_STREQ(to_string(Metric::kNonFlipPower), "non_flip_power");
}

}  // namespace
}  // namespace stco::cells
