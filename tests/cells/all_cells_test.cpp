// Parameterized integration sweep over the entire 35-cell library: every
// cell must build into a legal transistor netlist, and every combinational
// cell's SPICE DC behaviour must agree with its logic function at each
// input state — the strongest structural check the library has (it catches
// wrong pull-up duals, swapped polarities, and missing devices).

#include <gtest/gtest.h>

#include "src/cells/builder.hpp"
#include "src/cells/library.hpp"
#include "src/spice/engine.hpp"

namespace stco::cells {
namespace {

class EveryCell : public ::testing::TestWithParam<std::string> {
 protected:
  const CellDef& def() const { return find_cell(GetParam()); }
};

TEST_P(EveryCell, BuildsLegalNetlist) {
  spice::Netlist nl;
  const auto built = build_cell(nl, def(), compact::cnt_tech());
  EXPECT_EQ(built.num_transistors, def().num_transistors());
  EXPECT_EQ(nl.tfts().size(), def().num_transistors());
  // Every pin exists and is distinct.
  std::set<spice::NodeId> pins;
  for (const auto& [name, node] : built.pins) pins.insert(node);
  EXPECT_EQ(pins.size(), built.pins.size());
  // Balanced N/P counts (static CMOS + transmission gates are both paired).
  std::size_t nfets = 0, pfets = 0;
  for (const auto& t : nl.tfts())
    (t.params.type == compact::TftType::kNType ? nfets : pfets)++;
  EXPECT_EQ(nfets, pfets) << GetParam();
}

TEST_P(EveryCell, EveryTransistorTouchesTheNetwork) {
  spice::Netlist nl;
  const auto built = build_cell(nl, def(), compact::cnt_tech());
  (void)built;
  for (const auto& t : nl.tfts()) {
    EXPECT_NE(t.drain, t.source) << GetParam() << " " << t.name;
    EXPECT_LT(t.gate, nl.num_nodes());
  }
}

TEST_P(EveryCell, DcAgreesWithLogicFunction) {
  const auto& cell = def();
  if (cell.sequential) GTEST_SKIP() << "state-holding: covered by characterize tests";
  const auto tech = compact::cnt_tech();
  const std::size_t n = cell.inputs.size();
  for (std::uint32_t pattern = 0; pattern < (1u << n); ++pattern) {
    spice::Netlist nl;
    const auto built = build_cell(nl, cell, tech);
    nl.add_vsource("VDD", built.vdd, spice::kGround, spice::Waveform::dc(tech.vdd));
    std::map<std::string, bool> state;
    for (std::size_t i = 0; i < n; ++i) {
      const bool v = (pattern >> i) & 1;
      state[cell.inputs[i]] = v;
      nl.add_vsource("V" + cell.inputs[i], built.pins.at(cell.inputs[i]),
                     spice::kGround, spice::Waveform::dc(v ? tech.vdd : 0.0));
    }
    const auto dc = spice::dc_operating_point(nl);
    ASSERT_TRUE(dc.converged) << GetParam() << " pattern " << pattern;
    const bool expected = eval_combinational(cell, state);
    const double vy = dc.node_voltage[built.pins.at(cell.output)];
    if (expected)
      EXPECT_GT(vy, 0.9 * tech.vdd) << GetParam() << " pattern " << pattern;
    else
      EXPECT_LT(vy, 0.1 * tech.vdd) << GetParam() << " pattern " << pattern;
  }
}

std::vector<std::string> all_cell_names() {
  std::vector<std::string> names;
  for (const auto& c : standard_library()) names.push_back(c.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Library35, EveryCell, ::testing::ValuesIn(all_cell_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace stco::cells
