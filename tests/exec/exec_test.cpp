#include "src/exec/context.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace stco::exec {
namespace {

TEST(Context, SerialRunsInlineInIndexOrder) {
  const Context& ctx = Context::serial();
  EXPECT_EQ(ctx.threads(), 0u);
  EXPECT_EQ(ctx.concurrency(), 1u);
  std::vector<std::size_t> order;
  const std::size_t ran = ctx.parallel_for(5, [&](std::size_t i) {
    order.push_back(i);
  });
  EXPECT_EQ(ran, 5u);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Context, PoolStartupAndShutdown) {
  // Construct / destruct repeatedly: no deadlock, no leaked work.
  for (int round = 0; round < 3; ++round) {
    Context ctx(4);
    EXPECT_EQ(ctx.threads(), 4u);
    EXPECT_EQ(ctx.concurrency(), 4u);
    std::atomic<std::size_t> sum{0};
    ctx.parallel_for(100, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950u);
  }
  // A pool that never ran work must also shut down cleanly.
  Context idle(2);
}

TEST(Context, MapWritesIndexAddressedSlots) {
  Context ctx(3);
  const auto out = ctx.map(64, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 64u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Context, ExceptionPropagatesToSubmitter) {
  Context ctx(2);
  EXPECT_THROW(ctx.parallel_for(32,
                                [&](std::size_t i) {
                                  if (i == 7) throw std::runtime_error("task 7");
                                }),
               std::runtime_error);
  // The pool survives a failed region and accepts new work.
  std::atomic<std::size_t> ran{0};
  ctx.parallel_for(8, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 8u);
}

TEST(Context, ExceptionPropagatesOnSerialContext) {
  const Context& ctx = Context::serial();
  EXPECT_THROW(
      ctx.parallel_for(4, [](std::size_t) { throw std::invalid_argument("x"); }),
      std::invalid_argument);
}

TEST(Context, NestedSubmissionDoesNotDeadlock) {
  Context ctx(2);
  // Outer region fans out inner regions on the same context; blocked waiters
  // help execute their own group's tasks, so 2 workers suffice.
  std::atomic<std::size_t> total{0};
  ctx.parallel_for(8, [&](std::size_t) {
    ctx.parallel_for(16, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 8u * 16u);
}

TEST(Context, NestedMapIsDeterministic) {
  Context ctx(4);
  const auto outer = ctx.map(6, [&](std::size_t i) {
    const auto inner = ctx.map(10, [&](std::size_t j) { return i * 100 + j; });
    return std::accumulate(inner.begin(), inner.end(), std::size_t{0});
  });
  for (std::size_t i = 0; i < outer.size(); ++i)
    EXPECT_EQ(outer[i], i * 1000 + 45);
}

TEST(Context, RequestCancelSkipsUnstartedIterations) {
  Context ctx(2);
  std::atomic<std::size_t> ran{0};
  const std::size_t n = 10000;
  const std::size_t executed = ctx.parallel_for(n, [&](std::size_t i) {
    if (i == 0) ctx.request_cancel();
    ++ran;
  });
  EXPECT_LT(executed, n);  // the tail was skipped
  EXPECT_EQ(executed, ran.load());
  EXPECT_TRUE(ctx.cancel_requested());
  ctx.reset_cancel();
  EXPECT_FALSE(ctx.cancel_requested());
  // After reset the context runs full regions again.
  EXPECT_EQ(ctx.parallel_for(32, [](std::size_t) {}), 32u);
}

TEST(Context, ExhaustedBudgetReadsAsCancellationMidLadder) {
  Context ctx(2);
  numeric::SolveBudget budget(/*max_iterations=*/8, /*max_seconds=*/0.0);
  std::atomic<std::size_t> ran{0};
  {
    BudgetScope scope(ctx, budget);
    // Each iteration charges the shared budget the way a solver retry
    // ladder does; once it exhausts, unstarted iterations are skipped.
    const std::size_t executed = ctx.parallel_for(10000, [&](std::size_t) {
      budget.charge(1);
      ++ran;
    });
    EXPECT_LT(executed, 10000u);
    EXPECT_TRUE(ctx.cancel_requested());
  }
  // Scope detached the budget: the context is usable again.
  EXPECT_FALSE(ctx.cancel_requested());
  EXPECT_EQ(ctx.parallel_for(16, [](std::size_t) {}), 16u);
}

TEST(Context, StatsCountTasksAndRegions) {
  Context ctx(2);
  ctx.reset_stats();
  ctx.parallel_for(50, [](std::size_t) {});
  ctx.parallel_for(50, [](std::size_t) {});
  const auto st = ctx.stats();
  EXPECT_EQ(st.threads, 2u);
  EXPECT_EQ(st.parallel_regions, 2u);
  EXPECT_GT(st.tasks_run, 0u);
  EXPECT_FALSE(st.summary().empty());
  ctx.reset_stats();
  EXPECT_EQ(ctx.stats().parallel_regions, 0u);
}

TEST(TaskGroup, RunsIrregularWorkAndRethrows) {
  Context ctx(2);
  std::atomic<int> hits{0};
  {
    TaskGroup group(ctx);
    for (int i = 0; i < 20; ++i) group.run([&] { ++hits; });
    group.wait();
  }
  EXPECT_EQ(hits.load(), 20);

  TaskGroup failing(ctx);
  failing.run([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(failing.wait(), std::runtime_error);
}

TEST(TaskGroup, SerialContextRunsImmediately) {
  const Context& ctx = Context::serial();
  int hits = 0;
  TaskGroup group(ctx);
  group.run([&] { ++hits; });
  EXPECT_EQ(hits, 1);  // already ran, before wait()
  group.wait();
}

}  // namespace
}  // namespace stco::exec
