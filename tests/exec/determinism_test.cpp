// Cross-layer determinism contracts: the parallel execution core must make
// characterization, dataset generation, and training *schedule-independent*
// — bit-identical (or, for training, arithmetic-identical) results for any
// thread count. These tests pin that contract by comparing a serial run
// against an 8-thread run of the same work.

#include <gtest/gtest.h>

#include "src/cells/characterize.hpp"
#include "src/charlib/dataset.hpp"
#include "src/exec/context.hpp"
#include "src/gnn/trainer.hpp"
#include "src/surrogate/dataset.hpp"
#include "src/tensor/ops.hpp"

namespace stco {
namespace {

void expect_same_characterization(const cells::CellCharacterization& a,
                                  const cells::CellCharacterization& b) {
  EXPECT_EQ(a.cell, b.cell);
  EXPECT_EQ(a.leakage_power, b.leakage_power);  // bitwise, not NEAR
  EXPECT_EQ(a.input_capacitance, b.input_capacitance);
  ASSERT_EQ(a.arcs.size(), b.arcs.size());
  for (std::size_t i = 0; i < a.arcs.size(); ++i) {
    EXPECT_EQ(a.arcs[i].input_pin, b.arcs[i].input_pin);
    EXPECT_EQ(a.arcs[i].input_rising, b.arcs[i].input_rising);
    EXPECT_EQ(a.arcs[i].output_rising, b.arcs[i].output_rising);
    EXPECT_EQ(a.arcs[i].side_inputs, b.arcs[i].side_inputs);
    EXPECT_EQ(a.arcs[i].delay, b.arcs[i].delay);
    EXPECT_EQ(a.arcs[i].output_slew, b.arcs[i].output_slew);
    EXPECT_EQ(a.arcs[i].flip_energy, b.arcs[i].flip_energy);
  }
  ASSERT_EQ(a.nonflip.size(), b.nonflip.size());
  for (std::size_t i = 0; i < a.nonflip.size(); ++i) {
    EXPECT_EQ(a.nonflip[i].input_pin, b.nonflip[i].input_pin);
    EXPECT_EQ(a.nonflip[i].energy, b.nonflip[i].energy);
  }
  EXPECT_EQ(a.min_setup, b.min_setup);
  EXPECT_EQ(a.min_hold, b.min_hold);
  EXPECT_EQ(a.min_pulse_width, b.min_pulse_width);
  EXPECT_EQ(a.failed_sims, b.failed_sims);
  EXPECT_EQ(a.stats.attempts, b.stats.attempts);
  EXPECT_EQ(a.stats.direct_success, b.stats.direct_success);
  EXPECT_EQ(a.stats.recovered, b.stats.recovered);
  EXPECT_EQ(a.stats.failures, b.stats.failures);
}

TEST(Determinism, CombinationalCharacterizationBitIdentical) {
  const cells::CellDef& cell = cells::find_cell("NAND2");
  cells::CharConfig cfg;
  const auto serial = cells::characterize_cell(cell, cfg);
  exec::Context ctx(8);
  const auto parallel = cells::characterize_cell(cell, cfg, ctx);
  expect_same_characterization(serial, parallel);
}

TEST(Determinism, SequentialCharacterizationBitIdentical) {
  const cells::CellDef& cell = cells::find_cell("DFF");
  cells::CharConfig cfg;
  const auto serial = cells::characterize_cell(cell, cfg);
  exec::Context ctx(8);
  const auto parallel = cells::characterize_cell(cell, cfg, ctx);
  expect_same_characterization(serial, parallel);
}

TEST(Determinism, CharlibDatasetBitIdentical) {
  charlib::DatasetOptions opts;
  opts.cell_names = {"INV", "NOR2"};
  opts.input_slews = {15e-9};
  opts.output_loads = {40e-15};
  charlib::CornerRanges ranges;
  const auto corners = charlib::corner_grid(ranges, 1);

  charlib::DatasetStats stats_a;
  auto opts_a = opts;
  opts_a.stats = &stats_a;
  const auto serial = charlib::build_charlib_dataset(corners, opts_a);

  charlib::DatasetStats stats_b;
  auto opts_b = opts;
  opts_b.stats = &stats_b;
  std::vector<std::size_t> progress;
  opts_b.on_progress = [&](std::size_t done, std::size_t total) {
    progress.push_back(done);
    EXPECT_EQ(total, corners.size());
  };
  exec::Context ctx(8);
  const auto parallel = charlib::build_charlib_dataset(corners, opts_b, ctx);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].cell, parallel[i].cell);
    EXPECT_EQ(serial[i].metric, parallel[i].metric);
    EXPECT_EQ(serial[i].target, parallel[i].target);  // bitwise
    EXPECT_EQ(serial[i].graph.node_features, parallel[i].graph.node_features);
    EXPECT_EQ(serial[i].graph.edge_features, parallel[i].graph.edge_features);
    EXPECT_EQ(serial[i].graph.graph_targets, parallel[i].graph.graph_targets);
  }
  EXPECT_EQ(stats_a.characterizations, stats_b.characterizations);
  EXPECT_EQ(stats_a.degraded_characterizations, stats_b.degraded_characterizations);
  EXPECT_EQ(stats_a.failed_sims, stats_b.failed_sims);
  // on_progress fired once per corner, counting 1..N.
  ASSERT_EQ(progress.size(), corners.size());
  for (std::size_t i = 0; i < progress.size(); ++i) EXPECT_EQ(progress[i], i + 1);
}

TEST(Determinism, PopulationBitIdenticalAcrossThreadCounts) {
  surrogate::PopulationOptions opts;
  opts.mesh_nx = 10;
  opts.mesh_nch = 3;
  opts.mesh_nox = 3;

  surrogate::PopulationStats stats_a;
  auto opts_a = opts;
  opts_a.stats = &stats_a;
  const auto serial = surrogate::generate_population(12, /*seed=*/33, opts_a);

  surrogate::PopulationStats stats_b;
  auto opts_b = opts;
  opts_b.stats = &stats_b;
  exec::Context ctx(8);
  const auto parallel = surrogate::generate_population(12, /*seed=*/33, opts_b, ctx);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].drain_current, parallel[i].drain_current);  // bitwise
    EXPECT_EQ(serial[i].device.length, parallel[i].device.length);
    EXPECT_EQ(serial[i].bias.vg, parallel[i].bias.vg);
    EXPECT_EQ(serial[i].iv_graph.graph_targets, parallel[i].iv_graph.graph_targets);
    EXPECT_EQ(serial[i].poisson_graph.node_targets,
              parallel[i].poisson_graph.node_targets);
  }
  EXPECT_EQ(stats_a.attempts, stats_b.attempts);
  EXPECT_EQ(stats_a.dropped, stats_b.dropped);
}

TEST(Determinism, PopulationDropCountsMatchUnderInjectedSolverFailures) {
  // Starve the solver budgets so a fraction of attempts fail after the
  // recovery ladders: the drop-and-redraw path must consume the identical
  // attempt prefix — and drop the identical attempts — at any thread count.
  surrogate::PopulationOptions opts;
  opts.mesh_nx = 10;
  opts.mesh_nch = 3;
  opts.mesh_nox = 3;
  opts.poisson.max_newton = 4;
  opts.transport.max_newton = 4;

  surrogate::PopulationStats stats_a;
  auto opts_a = opts;
  opts_a.stats = &stats_a;
  const auto serial = surrogate::generate_population(10, /*seed=*/7, opts_a);

  surrogate::PopulationStats stats_b;
  auto opts_b = opts;
  opts_b.stats = &stats_b;
  exec::Context ctx(8);
  const auto parallel = surrogate::generate_population(10, /*seed=*/7, opts_b, ctx);

  // Some attempts must actually have failed, or this test tests nothing.
  EXPECT_GT(stats_a.dropped, 0u);
  EXPECT_EQ(stats_a.attempts, stats_b.attempts);
  EXPECT_EQ(stats_a.dropped, stats_b.dropped);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i].drain_current, parallel[i].drain_current);
}

TEST(Determinism, TrainerParallelMatchesSerialTrajectory) {
  // Same linear problem trained twice; the parallel forward / serial
  // index-ordered backward schedule must reproduce the serial trajectory
  // exactly (same losses, same final weight, bit for bit).
  auto run = [](const exec::Context& ctx) {
    tensor::Tensor w = tensor::Tensor::scalar(0.0, true);
    std::vector<double> xs, ys;
    for (int i = 0; i < 24; ++i) {
      xs.push_back(0.1 * i);
      ys.push_back(0.2 * i);
    }
    auto loss = [&](std::size_t i) {
      const auto x = tensor::Tensor::scalar(xs[i]);
      const auto y = tensor::Tensor::scalar(ys[i]);
      return tensor::mse_loss(tensor::mul(x, w), y);
    };
    gnn::TrainConfig cfg;
    cfg.epochs = 25;
    cfg.lr = 0.05;
    cfg.batch_size = 5;
    const auto stats = gnn::train({w}, loss, xs.size(), cfg, ctx);
    return std::make_pair(stats.epoch_loss, w.item());
  };
  const auto serial = run(exec::Context::serial());
  exec::Context ctx(8);
  const auto parallel = run(ctx);
  EXPECT_EQ(serial.first, parallel.first);  // per-epoch losses, bitwise
  EXPECT_EQ(serial.second, parallel.second);
}

}  // namespace
}  // namespace stco
