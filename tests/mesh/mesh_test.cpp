#include "src/mesh/mesh.hpp"

#include <gtest/gtest.h>

#include "src/tcad/device.hpp"

namespace stco::mesh {
namespace {

TEST(DeviceMesh, ConstructionAndSpacing) {
  DeviceMesh m(5, 3, 4.0, 1.0);
  EXPECT_EQ(m.num_nodes(), 15u);
  EXPECT_DOUBLE_EQ(m.dx(), 1.0);
  EXPECT_DOUBLE_EQ(m.dy(), 0.5);
  EXPECT_DOUBLE_EQ(m.node(4, 2).x, 4.0);
  EXPECT_DOUBLE_EQ(m.node(4, 2).y, 1.0);
}

TEST(DeviceMesh, InvalidSizesThrow) {
  EXPECT_THROW(DeviceMesh(1, 3, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(DeviceMesh(3, 3, 0.0, 1.0), std::invalid_argument);
}

TEST(DeviceMesh, EdgesAreBidirectionalFourNeighbour) {
  DeviceMesh m(3, 2, 2.0, 1.0);
  // Horizontal pairs: 2 per row * 2 rows = 4; vertical: 3. Directed: 14.
  EXPECT_EQ(m.edges().size(), 14u);
  // Every edge has its reverse.
  for (const auto& e : m.edges()) {
    bool found = false;
    for (const auto& r : m.edges())
      if (r.src == e.dst && r.dst == e.src) found = true;
    EXPECT_TRUE(found);
  }
}

TEST(DeviceMesh, EdgeGeometry) {
  DeviceMesh m(3, 3, 2.0, 2.0);
  for (const auto& e : m.edges()) {
    EXPECT_NEAR(e.length, 1.0, 1e-12);
    EXPECT_NEAR(std::abs(e.dx) + std::abs(e.dy), 1.0, 1e-12);
  }
}

TEST(BuildMesh, TftRegionsAndContacts) {
  tcad::TftDevice dev;
  dev.length = 2e-6;
  dev.contact_len = 0.5e-6;
  tcad::Bias bias{2.0, 1.0, 0.0};
  const auto m = tcad::build_mesh(dev, bias, 12, 4, 3);

  EXPECT_EQ(m.ny(), 8u);
  // Bottom row is gate metal, pinned to vg - flatband.
  for (std::size_t ix = 0; ix < m.nx(); ++ix) {
    const auto& nd = m.node(ix, m.ny() - 1);
    EXPECT_EQ(nd.region, Region::kGate);
    EXPECT_TRUE(nd.dirichlet);
    EXPECT_DOUBLE_EQ(nd.dirichlet_value, bias.vg - dev.semi.flatband);
  }
  // Top-left node is the source contact at vs; top-right the drain at vd.
  EXPECT_EQ(m.node(0, 0).region, Region::kSource);
  EXPECT_DOUBLE_EQ(m.node(0, 0).dirichlet_value, 0.0 + dev.contact_phi);
  EXPECT_EQ(m.node(m.nx() - 1, 0).region, Region::kDrain);
  EXPECT_DOUBLE_EQ(m.node(m.nx() - 1, 0).dirichlet_value, 1.0 + dev.contact_phi);
  // Middle of the top row is plain channel (no contact).
  EXPECT_EQ(m.node(m.nx() / 2, 0).region, Region::kChannel);
  EXPECT_FALSE(m.node(m.nx() / 2, 0).dirichlet);
}

TEST(BuildMesh, LayerMaterials) {
  tcad::TftDevice dev;
  const auto m = tcad::build_mesh(dev, {}, 8, 4, 3);
  EXPECT_EQ(m.node(3, 0).material, Material::kSemiconductor);
  EXPECT_EQ(m.node(3, 3).material, Material::kSemiconductor);
  EXPECT_EQ(m.node(3, 4).material, Material::kOxide);
  EXPECT_EQ(m.node(3, 6).material, Material::kOxide);
  EXPECT_EQ(m.node(3, 7).material, Material::kMetal);
}

TEST(BuildMesh, RejectsBadArguments) {
  tcad::TftDevice dev;
  EXPECT_THROW(tcad::build_mesh(dev, {}, 4, 4, 3), std::invalid_argument);
  EXPECT_THROW(tcad::build_mesh(dev, {}, 8, 1, 3), std::invalid_argument);
  dev.contact_len = 100.0 * dev.length;  // contacts swallow the whole surface
  EXPECT_THROW(tcad::build_mesh(dev, {}, 8, 4, 3), std::invalid_argument);
  dev.contact_len = 0.4e-6;
  dev.length = 0.0;
  EXPECT_THROW(tcad::build_mesh(dev, {}, 8, 4, 3), std::invalid_argument);
}

TEST(DeviceMesh, NumDirichletCountsContactsAndGate) {
  tcad::TftDevice dev;
  const auto m = tcad::build_mesh(dev, {}, 10, 4, 3);
  // Gate row (10) + some contact nodes at the top.
  EXPECT_GE(m.num_dirichlet(), 12u);
}

}  // namespace
}  // namespace stco::mesh
