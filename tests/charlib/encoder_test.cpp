#include "src/charlib/encoder.hpp"

#include <gtest/gtest.h>

namespace stco::charlib {
namespace {

PinContext default_ctx(const cells::CellDef& cell) {
  PinContext ctx;
  for (const auto& pin : cell.inputs) {
    ctx.current_state[pin] = false;
    ctx.next_state[pin] = false;
  }
  return ctx;
}

TEST(Encoder, InverterGraphShape) {
  const auto& inv = cells::find_cell("INV");
  const auto g = encode_cell(inv, compact::cnt_tech(), {}, default_ctx(inv));
  // Nodes: A, Y, 2 FETs, VDD, VSS = 6.
  EXPECT_EQ(g.num_nodes, 6u);
  EXPECT_EQ(g.node_dim, kCellNodeDim);
  EXPECT_EQ(g.edge_dim, kCellEdgeDim);
  // Each FET has 3 terminal edges (gate->A, d/s->Y and rail), bidirectional.
  EXPECT_EQ(g.num_edges(), 12u);
}

TEST(Encoder, TableIIIBitAssignments) {
  const auto& inv = cells::find_cell("INV");
  const auto tech = compact::cnt_tech();
  PinContext ctx = default_ctx(inv);
  // Built char-by-char to dodge a libstdc++ -Wrestrict false positive
  // (GCC 12, bug 105651) that STCO_WERROR would promote to an error.
  ctx.toggling_pin.clear();
  ctx.toggling_pin.push_back('A');
  ctx.input_slew = 25e-9;
  ctx.output_load = 50e-15;
  ctx.current_state["A"] = true;
  ctx.next_state["A"] = false;
  const CellScales s;
  const auto g = encode_cell(inv, tech, {}, ctx, s);

  // Node order: inputs (A=0), OUT=1, FETs 2..3, VDD=4, VSS=5.
  const auto f = [&](std::size_t n, std::size_t bit) {
    return g.node_features[n * kCellNodeDim + bit];
  };
  // IN node: bit2 = 1, slew on bit8, states on bits 10/11.
  EXPECT_DOUBLE_EQ(f(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(f(0, 8), 25e-9 / s.slew);
  EXPECT_DOUBLE_EQ(f(0, 10), 1.0);
  EXPECT_DOUBLE_EQ(f(0, 11), 0.0);
  // OUT node: bit1 = 1, load on bit9.
  EXPECT_DOUBLE_EQ(f(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(f(1, 9), 50e-15 / s.load);
  // FET nodes: bits 1,2 set, polarity on bit3 (+-1), width/cox/vth on 5-7.
  double pol_sum = 0.0;
  for (std::size_t n : {2u, 3u}) {
    EXPECT_DOUBLE_EQ(f(n, 1), 1.0);
    EXPECT_DOUBLE_EQ(f(n, 2), 1.0);
    EXPECT_NE(f(n, 3), 0.0);
    pol_sum += f(n, 3);
    EXPECT_GT(f(n, 5), 0.0);
    EXPECT_GT(f(n, 6), 0.0);
    EXPECT_GT(f(n, 7), 0.0);
  }
  EXPECT_DOUBLE_EQ(pol_sum, 0.0);  // one N (-1) and one P (+1)
  // VDD node: bit0 = 1, bit4 = vdd.
  EXPECT_DOUBLE_EQ(f(4, 0), 1.0);
  EXPECT_DOUBLE_EQ(f(4, 4), tech.vdd / s.vdd);
  // VSS node: bits 0 and 2.
  EXPECT_DOUBLE_EQ(f(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(f(5, 2), 1.0);
  EXPECT_DOUBLE_EQ(f(5, 4), 0.0);
}

TEST(Encoder, VthKnobReachesFetNodes) {
  const auto& inv = cells::find_cell("INV");
  auto t1 = compact::cnt_tech();
  auto t2 = t1;
  t2.vth = t1.vth * 1.5;
  const auto g1 = encode_cell(inv, t1, {}, default_ctx(inv));
  const auto g2 = encode_cell(inv, t2, {}, default_ctx(inv));
  EXPECT_NEAR(g2.node_features[2 * kCellNodeDim + 7] /
                  g1.node_features[2 * kCellNodeDim + 7],
              1.5, 1e-9);
}

TEST(Encoder, InternalNetsBecomeFetFetEdges) {
  // NAND2's stacked NFETs share an internal net that is not a pin.
  const auto& nand2 = cells::find_cell("NAND2");
  const auto g = encode_cell(nand2, compact::cnt_tech(), {}, default_ctx(nand2));
  // Nodes: A, B, Y, 4 FETs, VDD, VSS = 9.
  EXPECT_EQ(g.num_nodes, 9u);
  // Terminal edges: 4 gates + (pull-up: 2 P x 2 terminals) + pull-down:
  // top N -> Y, bottom N -> VSS, plus 1 FET-FET internal edge; x2 directed.
  EXPECT_EQ(g.num_edges(), 2u * (4 + 4 + 2 + 1));
}

TEST(Encoder, SequentialCellEncodes) {
  const auto& dff = cells::find_cell("DFF");
  const auto g = encode_cell(dff, compact::cnt_tech(), {}, default_ctx(dff));
  // D, CK, Q + 18 FETs + rails.
  EXPECT_EQ(g.num_nodes, 2u + 1u + 18u + 2u);
  EXPECT_NO_THROW(g.check());
  EXPECT_GT(g.num_edges(), 40u);
}

TEST(Encoder, EdgeTypesDistinguishGateFromChannel) {
  const auto& inv = cells::find_cell("INV");
  const auto g = encode_cell(inv, compact::cnt_tech(), {}, default_ctx(inv));
  std::size_t gate_edges = 0, sd_edges = 0;
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    if (g.edge_features[e * kCellEdgeDim + 0] > 0.5) ++gate_edges;
    if (g.edge_features[e * kCellEdgeDim + 1] > 0.5) ++sd_edges;
  }
  EXPECT_EQ(gate_edges, 4u);  // 2 FET gates x 2 directions
  EXPECT_EQ(sd_edges, 8u);
}

}  // namespace
}  // namespace stco::charlib
