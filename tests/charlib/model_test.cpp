#include "src/charlib/model.hpp"

#include <gtest/gtest.h>

#include "src/charlib/dataset.hpp"

namespace stco::charlib {
namespace {

/// Tiny shared dataset: 2 cells x a handful of corners, built once.
const std::vector<CharSample>& tiny_dataset() {
  static const std::vector<CharSample> data = [] {
    CornerRanges ranges;
    DatasetOptions opts;
    opts.cell_names = {"INV", "NAND2"};
    opts.input_slews = {15e-9};
    opts.output_loads = {30e-15};
    return build_charlib_dataset(corner_grid(ranges, 2), opts);
  }();
  return data;
}

TEST(CornerGrid, SizesAndRanges) {
  CornerRanges r;
  EXPECT_EQ(corner_grid(r, 1).size(), 1u);
  EXPECT_EQ(corner_grid(r, 2).size(), 8u);
  EXPECT_EQ(corner_grid(r, 3).size(), 27u);
  for (const auto& c : corner_grid(r, 3)) {
    EXPECT_GE(c.vdd, r.vdd_min);
    EXPECT_LE(c.vdd, r.vdd_max);
    EXPECT_GE(c.vth, r.vth_min);
    EXPECT_LE(c.vth, r.vth_max);
  }
  EXPECT_THROW(corner_grid(r, 0), std::invalid_argument);
}

TEST(CornerGrid, OffsetGridAvoidsTrainPoints) {
  CornerRanges r;
  const auto train = corner_grid(r, 3);
  const auto test = corner_grid_offset(r, 3);
  for (const auto& t : test)
    for (const auto& tr : train)
      EXPECT_FALSE(std::fabs(t.vdd - tr.vdd) < 1e-12 &&
                   std::fabs(t.vth - tr.vth) < 1e-12 &&
                   std::fabs(t.cox - tr.cox) < 1e-12);
}

TEST(Dataset, ContainsExpectedMetrics) {
  const auto& data = tiny_dataset();
  ASSERT_FALSE(data.empty());
  const auto counts = CellCharModel::count_by_metric(data);
  EXPECT_GT(counts[static_cast<std::size_t>(cells::Metric::kDelay)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(cells::Metric::kOutputSlew)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(cells::Metric::kFlipPower)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(cells::Metric::kNonFlipPower)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(cells::Metric::kCapacitance)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(cells::Metric::kLeakagePower)], 0u);
  // No sequential cells in this subset.
  EXPECT_EQ(counts[static_cast<std::size_t>(cells::Metric::kMinSetup)], 0u);
  for (const auto& s : data) {
    EXPECT_GT(s.target, 0.0);
    EXPECT_NO_THROW(s.graph.check());
  }
}

TEST(Dataset, TargetsRespondToCorners) {
  // Delay must differ between a low-VDD and a high-VDD corner.
  const auto& data = tiny_dataset();
  double lo = -1, hi = -1;
  for (const auto& s : data) {
    if (s.metric != cells::Metric::kDelay || s.cell != "INV") continue;
    // vdd is encoded on the VDD node (second to last), bit4.
    const double vdd_feat =
        s.graph.node_features[(s.graph.num_nodes - 2) * kCellNodeDim + 4];
    if (lo < 0) {
      lo = s.target;
    }
    (void)vdd_feat;
    hi = s.target;
  }
  ASSERT_GT(lo, 0.0);
  EXPECT_NE(lo, hi);
}

TEST(Model, LogTargetRoundTrip) {
  for (double v : {1e-15, 1e-9, 2.5e-6}) {
    EXPECT_NEAR(unlog_target(log_target(v)) / v, 1.0, 1e-5);
  }
}

TEST(Model, PredictBeforeTrainingThrows) {
  CellCharModel model;
  const auto& data = tiny_dataset();
  EXPECT_THROW(model.predict(data[0].graph, data[0].metric), std::logic_error);
}

TEST(Model, TrainingReducesMape) {
  const auto& data = tiny_dataset();
  CellCharModelConfig cfg;
  cfg.hidden = 16;
  cfg.mlp_hidden = 16;
  cfg.train.epochs = 30;
  CellCharModel model(cfg);
  model.fit_normalization(data);
  const auto before = model.mape_by_metric(data);
  model.train(data);
  const auto after = model.mape_by_metric(data);
  const auto d = static_cast<std::size_t>(cells::Metric::kDelay);
  ASSERT_GE(before[d], 0.0);
  EXPECT_LT(after[d], before[d]);
}

TEST(Model, ParameterCountReasonable) {
  CellCharModel model;
  EXPECT_GT(model.num_parameters(), 1000u);
  EXPECT_LT(model.num_parameters(), 1000000u);
}

TEST(Model, MapeReportsMinusOneForAbsentMetrics) {
  CellCharModel model;
  const auto& data = tiny_dataset();
  model.fit_normalization(data);
  std::vector<CharSample> delay_only;
  for (const auto& s : data)
    if (s.metric == cells::Metric::kDelay) delay_only.push_back(s);
  const auto m = model.mape_by_metric(delay_only);
  EXPECT_GE(m[static_cast<std::size_t>(cells::Metric::kDelay)], 0.0);
  EXPECT_LT(m[static_cast<std::size_t>(cells::Metric::kMinHold)], 0.0);
}


TEST(Model, SaveLoadRoundTrip) {
  const auto& data = tiny_dataset();
  CellCharModelConfig cfg;
  cfg.hidden = 16;
  cfg.mlp_hidden = 16;
  cfg.train.epochs = 5;
  CellCharModel trained(cfg);
  trained.fit_normalization(data);
  trained.train(data);
  const double ref = trained.predict(data[0].graph, data[0].metric);
  trained.save("/tmp/stco_charlib_model.bin");

  CellCharModel fresh(cfg);  // same topology, untrained
  fresh.load("/tmp/stco_charlib_model.bin");
  EXPECT_DOUBLE_EQ(fresh.predict(data[0].graph, data[0].metric), ref);

  CellCharModelConfig other = cfg;
  other.hidden = 8;
  CellCharModel wrong(other);
  EXPECT_THROW(wrong.load("/tmp/stco_charlib_model.bin"), std::runtime_error);
}


TEST(Model, TransfersToThirdTechnology) {
  // Paper: "though initially tested on CNT technology, its adaptability
  // allows easy application to other technologies like IGZO and LTPS".
  // The identical encoder + model trains on IGZO corners (not in Table IV)
  // without any code changes.
  CornerRanges r;
  r.kind = tcad::SemiconductorKind::kIgzo;
  r.vdd_min = 4.0;
  r.vdd_max = 6.0;
  r.vth_min = 1.2;
  r.vth_max = 1.8;
  DatasetOptions opts;
  opts.cell_names = {"INV", "NAND2"};
  opts.input_slews = {20e-9};
  opts.output_loads = {40e-15};
  const auto train = build_charlib_dataset(corner_grid(r, 2), opts);
  const auto test = build_charlib_dataset(corner_grid_offset(r, 2), opts);
  ASSERT_FALSE(train.empty());

  CellCharModelConfig cfg;
  cfg.hidden = 16;
  cfg.mlp_hidden = 16;
  cfg.train.epochs = 60;
  CellCharModel model(cfg);
  model.fit_normalization(train);
  model.train(train);
  const auto mape = model.mape_by_metric(test);
  const auto d = static_cast<std::size_t>(cells::Metric::kDelay);
  ASSERT_GE(mape[d], 0.0);
  EXPECT_LT(mape[d], 25.0);  // coarse bound at this tiny scale
}


TEST(Model, MapeByCellBreakdown) {
  const auto& data = tiny_dataset();
  CellCharModelConfig cfg;
  cfg.hidden = 16;
  cfg.mlp_hidden = 16;
  cfg.train.epochs = 10;
  CellCharModel model(cfg);
  model.fit_normalization(data);
  model.train(data);
  const auto by_cell = model.mape_by_cell(data, cells::Metric::kDelay);
  ASSERT_EQ(by_cell.size(), 2u);  // INV and NAND2
  EXPECT_TRUE(by_cell.count("INV"));
  EXPECT_TRUE(by_cell.count("NAND2"));
  for (const auto& [cell, mape] : by_cell) EXPECT_GE(mape, 0.0) << cell;
}

}  // namespace
}  // namespace stco::charlib
