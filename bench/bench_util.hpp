#pragma once
// Shared helpers for the experiment-reproduction benches: wall-clock
// timing, environment-variable size overrides, and aligned table printing.
//
// Every bench prints the paper's reference values next to our measured
// values; EXPERIMENTS.md records both. Sizes default to a few minutes of
// CPU; export STCO_BENCH_SCALE=large for closer-to-paper sweeps.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/obs/obs.hpp"
#include "src/persist/storage.hpp"

namespace stco::bench {

class Timer {
 public:
  Timer() : t0_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
  }
  void reset() { t0_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point t0_;
};

inline std::size_t env_size(const char* name, std::size_t small_default,
                            std::size_t large_default) {
  if (const char* v = std::getenv(name)) return static_cast<std::size_t>(std::atoll(v));
  if (const char* s = std::getenv("STCO_BENCH_SCALE"))
    if (std::string(s) == "large") return large_default;
  return small_default;
}

/// Write a bench result file: `{"bench": <name>, <payload>, "obs": {...}}`.
/// `payload` is a pre-rendered JSON fragment of one or more `"key": value`
/// members (no surrounding braces). Every bench JSON carries the full
/// metrics snapshot of the process under "obs" — counters, gauges, and
/// histograms accumulated by the instrumented layers during the run —
/// including the "obs_schema_version" tag, so downstream tooling can join
/// bench numbers with solver/exec telemetry.
inline void write_bench_json(const std::string& path, const std::string& bench,
                             const std::string& payload) {
  std::ostringstream ss;
  ss << "{\n  \"bench\": \"" << bench << "\",\n" << payload
     << ",\n  \"obs\": " << obs::snapshot().to_json() << "\n}\n";
  persist::default_storage().write_atomic(path, ss.str());
}

inline void rule(char c = '-', int width = 86) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void header(const char* title) {
  rule('=');
  std::printf("%s\n", title);
  rule('=');
}

}  // namespace stco::bench
