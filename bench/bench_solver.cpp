// Sparse linear-algebra fast-path A/B bench (seeds the solver trajectory).
//
// Sweeps structured mesh sizes up to 256x256 and times the TCAD nonlinear
// Poisson and drift-diffusion solves with three linear-solver policies per
// size:
//   legacy  Jacobi-preconditioned BiCGSTAB + dense LU fallback, fresh
//           pattern build per Newton iteration (kLegacy);
//   ilu     workspace fast path with ILU(0)-preconditioned Krylov and
//           banded LU fallback (kIlu) — the multigrid A/B control;
//   mg      full fast path (kFast): geometric multigrid V-cycle
//           preconditioning on meshes larger than 32 on a side, falling
//           back to the ILU rung otherwise.
// The legacy runs are capped separately (STCO_BENCH_SOLVER_LEGACY_MAX)
// because dense fallbacks make them cubic in node count; physics agreement
// is checked mg-vs-ilu at every size and against legacy when it ran. Mean
// Krylov iterations under the MG preconditioner are read per size from the
// solver.mg.iterations histogram delta: near-constant iterations across
// sizes is the near-O(n) claim.
//
// Also runs a standard bias sweep on the mg path and reports the
// `solver.linear.dense_fallback` delta, which must be 0.
//
// Emits BENCH_solver.json with the embedded obs snapshot.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/obs/metrics.hpp"
#include "src/tcad/drift_diffusion.hpp"
#include "src/tcad/poisson.hpp"

namespace {

using namespace stco;

struct SizeResult {
  std::size_t nx = 0, ny = 0;
  double poisson_legacy_s = 0.0;  ///< 0 when legacy skipped at this size
  double poisson_ilu_s = 0.0, poisson_mg_s = 0.0;
  double dd_legacy_s = 0.0;       ///< 0 when DD or legacy skipped
  double dd_ilu_s = 0.0, dd_mg_s = 0.0;  ///< 0 when DD skipped at this size
  double mg_mean_iters = 0.0;  ///< mean Krylov iters per MG-preconditioned solve
  std::uint64_t mg_solves = 0; ///< MG-converged solves at this size (0 => ILU rung)
  bool physics_match = true;   ///< mg vs ilu (and vs legacy when run) within tol
};

/// ny = n_ch + n_ox + 1 (gate row); pick a film/oxide split with ny == nx.
void square_mesh_rows(std::size_t nx, std::size_t& n_ch, std::size_t& n_ox) {
  n_ch = (2 * nx) / 3;
  n_ox = nx - n_ch - 1;
}

double max_abs_diff(const numeric::Vec& a, const numeric::Vec& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

}  // namespace

int main() {
  bench::header("bench_solver: legacy vs ILU(0) vs multigrid sparse path (TCAD)");

  tcad::TftDevice dev;
  dev.semi = tcad::igzo_params();
  const tcad::Bias bias{3.0, 1.0, 0.0};

  tcad::PoissonOptions p_legacy, p_ilu, p_mg;
  p_legacy.linear_solver = tcad::LinearSolverPolicy::kLegacy;
  p_ilu.linear_solver = tcad::LinearSolverPolicy::kIlu;
  p_mg.linear_solver = tcad::LinearSolverPolicy::kFast;
  tcad::DriftDiffusionOptions d_legacy, d_ilu, d_mg;
  d_legacy.linear_solver = tcad::LinearSolverPolicy::kLegacy;
  d_ilu.linear_solver = tcad::LinearSolverPolicy::kIlu;
  d_mg.linear_solver = tcad::LinearSolverPolicy::kFast;

  const std::size_t max_size = bench::env_size("STCO_BENCH_SOLVER_MAX", 64, 256);
  const std::size_t legacy_max_size =
      bench::env_size("STCO_BENCH_SOLVER_LEGACY_MAX", 96, 96);
  const std::size_t dd_max_size = bench::env_size("STCO_BENCH_SOLVER_DD_MAX", 64, 64);
  std::vector<std::size_t> sizes;
  for (std::size_t nx : {std::size_t{16}, std::size_t{32}, std::size_t{48},
                         std::size_t{64}, std::size_t{96}, std::size_t{128},
                         std::size_t{192}, std::size_t{256}})
    if (nx <= max_size) sizes.push_back(nx);

  auto& mg_iters_hist =
      obs::histogram("solver.mg.iterations", {2, 5, 10, 20, 40, 80});

  std::printf("%7s  %10s %9s %9s %8s %7s  %9s %9s %8s\n", "mesh", "p-legacy",
              "p-ilu", "p-mg", "speedup", "mg-it", "dd-ilu", "dd-mg", "speedup");
  bench::rule('-', 100);

  std::vector<SizeResult> results;
  for (std::size_t nx : sizes) {
    std::size_t n_ch, n_ox;
    square_mesh_rows(nx, n_ch, n_ox);
    const auto mesh = tcad::build_mesh(dev, bias, nx, n_ch, n_ox);

    SizeResult r;
    r.nx = nx;
    r.ny = mesh.ny();

    bench::Timer t;
    tcad::PoissonSolution ps_legacy;
    const bool run_legacy = nx <= legacy_max_size;
    if (run_legacy) {
      ps_legacy = tcad::solve_poisson(dev, bias, mesh, p_legacy);
      r.poisson_legacy_s = t.seconds();
    }
    t.reset();
    const auto ps_ilu = tcad::solve_poisson(dev, bias, mesh, p_ilu);
    r.poisson_ilu_s = t.seconds();

    const auto it_count0 = mg_iters_hist.count();
    const auto it_sum0 = mg_iters_hist.sum();
    const auto mg_solves0 = obs::counter("solver.mg.solves").value();
    t.reset();
    const auto ps_mg = tcad::solve_poisson(dev, bias, mesh, p_mg);
    r.poisson_mg_s = t.seconds();
    const auto it_dcount = mg_iters_hist.count() - it_count0;
    r.mg_mean_iters = it_dcount == 0
                          ? 0.0
                          : (mg_iters_hist.sum() - it_sum0) /
                                static_cast<double>(it_dcount);
    r.mg_solves = obs::counter("solver.mg.solves").value() - mg_solves0;

    if (!(ps_ilu.converged && ps_mg.converged) ||
        max_abs_diff(ps_mg.potential, ps_ilu.potential) > 1e-6)
      r.physics_match = false;
    if (run_legacy &&
        (!ps_legacy.converged ||
         max_abs_diff(ps_mg.potential, ps_legacy.potential) > 1e-6))
      r.physics_match = false;

    if (nx <= dd_max_size) {
      tcad::DriftDiffusionSolution dd_legacy;
      if (run_legacy) {
        t.reset();
        dd_legacy = tcad::solve_drift_diffusion(dev, bias, mesh, d_legacy);
        r.dd_legacy_s = t.seconds();
      }
      t.reset();
      const auto dd_ilu = tcad::solve_drift_diffusion(dev, bias, mesh, d_ilu);
      r.dd_ilu_s = t.seconds();
      t.reset();
      const auto dd_mg = tcad::solve_drift_diffusion(dev, bias, mesh, d_mg);
      r.dd_mg_s = t.seconds();
      const double id_scale = std::max(std::fabs(dd_ilu.drain_current), 1e-18);
      if (!(dd_ilu.converged && dd_mg.converged) ||
          std::fabs(dd_mg.drain_current - dd_ilu.drain_current) > 0.01 * id_scale)
        r.physics_match = false;
      if (run_legacy &&
          (!dd_legacy.converged ||
           std::fabs(dd_mg.drain_current - dd_legacy.drain_current) >
               0.01 * std::max(std::fabs(dd_legacy.drain_current), 1e-18)))
        r.physics_match = false;
    }

    std::printf("%3zux%-3zu %9.3fs %8.3fs %8.3fs %7.2fx %7.1f %8.3fs %8.3fs %7.2fx%s\n",
                r.nx, r.ny, r.poisson_legacy_s, r.poisson_ilu_s, r.poisson_mg_s,
                r.poisson_mg_s > 0 ? r.poisson_ilu_s / r.poisson_mg_s : 0.0,
                r.mg_mean_iters, r.dd_ilu_s, r.dd_mg_s,
                r.dd_mg_s > 0 ? r.dd_ilu_s / r.dd_mg_s : 0.0,
                r.physics_match ? "" : "  [PHYSICS MISMATCH]");
    results.push_back(r);
  }

  // Standard bias sweep on the mg path only: the dense-fallback counter
  // must not move. (The legacy runs above use the dense path by design.)
  const auto fallback_before =
      obs::counter("solver.linear.dense_fallback").value();
  {
    std::size_t n_ch, n_ox;
    square_mesh_rows(64, n_ch, n_ox);
    for (double vg : {0.0, 1.0, 2.0, 3.0, 4.0}) {
      const tcad::Bias b{vg, 1.0, 0.0};
      const auto mesh_b = tcad::build_mesh(dev, b, 64, n_ch, n_ox);
      (void)tcad::solve_poisson(dev, b, mesh_b, p_mg);
    }
  }
  const auto fallback_sweep =
      obs::counter("solver.linear.dense_fallback").value() - fallback_before;
  bench::rule('-', 100);
  std::printf("dense fallbacks during mg-path bias sweep: %llu (target 0)\n",
              static_cast<unsigned long long>(fallback_sweep));

  std::string payload = "  \"sizes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char buf[640];
    std::snprintf(buf, sizeof buf,
                  "    {\"nx\": %zu, \"ny\": %zu, \"poisson_legacy_s\": %.6f, "
                  "\"poisson_ilu_s\": %.6f, \"poisson_mg_s\": %.6f, "
                  "\"dd_legacy_s\": %.6f, \"dd_ilu_s\": %.6f, \"dd_mg_s\": %.6f, "
                  "\"mg_mean_iters\": %.2f, \"mg_solves\": %llu, "
                  "\"physics_match\": %s}%s\n",
                  r.nx, r.ny, r.poisson_legacy_s, r.poisson_ilu_s, r.poisson_mg_s,
                  r.dd_legacy_s, r.dd_ilu_s, r.dd_mg_s, r.mg_mean_iters,
                  static_cast<unsigned long long>(r.mg_solves),
                  r.physics_match ? "true" : "false",
                  i + 1 < results.size() ? "," : "");
    payload += buf;
  }
  payload += "  ],\n  \"dense_fallback_bias_sweep\": " + std::to_string(fallback_sweep);
  bench::write_bench_json("BENCH_solver.json", "solver", payload);
  std::printf("wrote BENCH_solver.json\n");
  return 0;
}
