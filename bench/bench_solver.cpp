// Sparse linear-algebra fast-path A/B bench (seeds the solver trajectory).
//
// Sweeps structured mesh sizes and times the TCAD nonlinear Poisson and
// drift-diffusion solves twice per size: once with the legacy linear
// path (Jacobi-preconditioned BiCGSTAB + dense LU fallback, fresh pattern
// build per Newton iteration) and once with the workspace fast path
// (ILU(0)-preconditioned Krylov, banded LU fallback, pattern + factor
// reuse). Also runs a standard bias sweep on the fast path and reports the
// `solver.linear.dense_fallback` delta, which must be 0.
//
// Emits BENCH_solver.json with the embedded obs snapshot.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/obs/metrics.hpp"
#include "src/tcad/drift_diffusion.hpp"
#include "src/tcad/poisson.hpp"

namespace {

using namespace stco;

struct SizeResult {
  std::size_t nx = 0, ny = 0;
  double poisson_legacy_s = 0.0, poisson_fast_s = 0.0;
  double dd_legacy_s = 0.0, dd_fast_s = 0.0;  ///< 0 when DD skipped at this size
  bool physics_match = true;  ///< fast-vs-legacy drain current within 1%
};

/// ny = n_ch + n_ox + 1 (gate row); pick a film/oxide split with ny == nx.
void square_mesh_rows(std::size_t nx, std::size_t& n_ch, std::size_t& n_ox) {
  n_ch = (2 * nx) / 3;
  n_ox = nx - n_ch - 1;
}

}  // namespace

int main() {
  bench::header("bench_solver: legacy vs fast sparse linear path (TCAD)");

  tcad::TftDevice dev;
  dev.semi = tcad::igzo_params();
  const tcad::Bias bias{3.0, 1.0, 0.0};

  tcad::PoissonOptions p_legacy, p_fast;
  p_legacy.linear_solver = tcad::LinearSolverPolicy::kLegacy;
  p_fast.linear_solver = tcad::LinearSolverPolicy::kFast;
  tcad::DriftDiffusionOptions d_legacy, d_fast;
  d_legacy.linear_solver = tcad::LinearSolverPolicy::kLegacy;
  d_fast.linear_solver = tcad::LinearSolverPolicy::kFast;

  const std::size_t max_size = bench::env_size("STCO_BENCH_SOLVER_MAX", 64, 96);
  const std::size_t dd_max_size = bench::env_size("STCO_BENCH_SOLVER_DD_MAX", 64, 64);
  std::vector<std::size_t> sizes;
  for (std::size_t nx : {std::size_t{16}, std::size_t{32}, std::size_t{48},
                         std::size_t{64}, std::size_t{96}})
    if (nx <= max_size) sizes.push_back(nx);

  std::printf("%6s  %14s %12s %9s  %14s %12s %9s\n", "mesh", "poisson legacy",
              "poisson fast", "speedup", "dd legacy", "dd fast", "speedup");
  bench::rule();

  std::vector<SizeResult> results;
  for (std::size_t nx : sizes) {
    std::size_t n_ch, n_ox;
    square_mesh_rows(nx, n_ch, n_ox);
    const auto mesh = tcad::build_mesh(dev, bias, nx, n_ch, n_ox);

    SizeResult r;
    r.nx = nx;
    r.ny = mesh.ny();

    bench::Timer t;
    const auto ps_legacy = tcad::solve_poisson(dev, bias, mesh, p_legacy);
    r.poisson_legacy_s = t.seconds();
    t.reset();
    const auto ps_fast = tcad::solve_poisson(dev, bias, mesh, p_fast);
    r.poisson_fast_s = t.seconds();
    double max_dphi = 0.0;
    for (std::size_t i = 0; i < ps_fast.potential.size(); ++i)
      max_dphi = std::max(max_dphi,
                          std::fabs(ps_fast.potential[i] - ps_legacy.potential[i]));
    if (!(ps_legacy.converged && ps_fast.converged) || max_dphi > 1e-6)
      r.physics_match = false;

    if (nx <= dd_max_size) {
      t.reset();
      const auto dd_legacy = tcad::solve_drift_diffusion(dev, bias, mesh, d_legacy);
      r.dd_legacy_s = t.seconds();
      t.reset();
      const auto dd_fast = tcad::solve_drift_diffusion(dev, bias, mesh, d_fast);
      r.dd_fast_s = t.seconds();
      const double id_scale = std::max(std::fabs(dd_legacy.drain_current), 1e-18);
      if (!(dd_legacy.converged && dd_fast.converged) ||
          std::fabs(dd_fast.drain_current - dd_legacy.drain_current) > 0.01 * id_scale)
        r.physics_match = false;
    }

    std::printf("%3zux%-3zu %13.3fs %11.3fs %8.2fx  %13.3fs %11.3fs %8.2fx%s\n",
                r.nx, r.ny, r.poisson_legacy_s, r.poisson_fast_s,
                r.poisson_fast_s > 0 ? r.poisson_legacy_s / r.poisson_fast_s : 0.0,
                r.dd_legacy_s, r.dd_fast_s,
                r.dd_fast_s > 0 ? r.dd_legacy_s / r.dd_fast_s : 0.0,
                r.physics_match ? "" : "  [PHYSICS MISMATCH]");
    results.push_back(r);
  }

  // Standard bias sweep on the fast path only: the dense-fallback counter
  // must not move. (The legacy runs above use the dense path by design.)
  const auto fallback_before =
      obs::counter("solver.linear.dense_fallback").value();
  {
    std::size_t n_ch, n_ox;
    square_mesh_rows(64, n_ch, n_ox);
    const auto mesh = tcad::build_mesh(dev, bias, 64, n_ch, n_ox);
    for (double vg : {0.0, 1.0, 2.0, 3.0, 4.0}) {
      const tcad::Bias b{vg, 1.0, 0.0};
      const auto mesh_b = tcad::build_mesh(dev, b, 64, n_ch, n_ox);
      (void)tcad::solve_poisson(dev, b, mesh_b, p_fast);
    }
    (void)mesh;
  }
  const auto fallback_sweep =
      obs::counter("solver.linear.dense_fallback").value() - fallback_before;
  bench::rule();
  std::printf("dense fallbacks during fast-path bias sweep: %llu (target 0)\n",
              static_cast<unsigned long long>(fallback_sweep));

  std::string payload = "  \"sizes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"nx\": %zu, \"ny\": %zu, \"poisson_legacy_s\": %.6f, "
                  "\"poisson_fast_s\": %.6f, \"dd_legacy_s\": %.6f, "
                  "\"dd_fast_s\": %.6f, \"physics_match\": %s}%s\n",
                  r.nx, r.ny, r.poisson_legacy_s, r.poisson_fast_s, r.dd_legacy_s,
                  r.dd_fast_s, r.physics_match ? "true" : "false",
                  i + 1 < results.size() ? "," : "");
    payload += buf;
  }
  payload += "  ],\n  \"dense_fallback_bias_sweep\": " + std::to_string(fallback_sweep);
  bench::write_bench_json("BENCH_solver.json", "solver", payload);
  std::printf("wrote BENCH_solver.json\n");
  return 0;
}
