// Reproduces paper Fig. 3: validation of the unified TFT compact model
// against measured I-V curves for (a) CNT-TFT L=25/W=125 um, (b) LTPS-TFT
// L=16/W=40 um, (c) IGZO-TFT L=20/W=30 um.
//
// We have no access to the authors' fabricated devices; "measured" data is
// synthesized by a richer reference model (contact resistance, CLM,
// mobility roll-off) plus 1% multiplicative noise — see DESIGN.md. The
// figure's claim is that Eq. 1 + charge drift fits all three technologies
// with one model; we report the extracted parameters and on-state MAPE per
// device, plus a transfer-curve sample table (the figure's data, as text).

#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/compact/extraction.hpp"

namespace {

using namespace stco;
using namespace stco::compact;

void run_device(const Fig3Device& dev) {
  bench::Timer t;
  const auto res = validate_fig3_device(dev);
  printf("\n%s\n", res.name);
  printf("  extracted: mu0 = %.3f cm^2/Vs  vth = %+.3f V  gamma = %.3f  (LM iters %zu, %.2f s)\n",
         res.extraction.params.mu0 * 1e4, res.extraction.params.vth,
         res.extraction.params.gamma, res.extraction.lm_iterations, t.seconds());
  printf("  truth    : mu0 = %.3f cm^2/Vs  vth = %+.3f V  gamma = %.3f\n",
         dev.truth.mu0 * 1e4, dev.truth.vth, dev.truth.gamma);
  printf("  fit quality: log-RMSE = %.3f decades, on-state MAPE transfer = %.2f%%, output = %.2f%%\n",
         res.extraction.log_rmse, res.transfer_on_mape, res.output_on_mape);

  // Transfer-curve samples: measured vs model (the plotted content of Fig 3).
  numeric::Rng rng(3);
  const auto meas =
      measure_transfer(dev.truth, dev.extras, dev.vd_transfer, dev.vg_sweep, rng);
  printf("  %-8s %-14s %-14s %-9s\n", "Vg [V]", "I_meas [A]", "I_model [A]", "err");
  for (std::size_t i = 0; i < meas.size(); i += 3) {
    if (std::fabs(meas[i].id) < 1e-12) continue;  // below the measurement floor
    const double im = tft_current(res.extraction.params, meas[i].vg, meas[i].vd, 0.0);
    const double err = (im - meas[i].id) / meas[i].id * 100.0;
    printf("  %-8.2f %-14.4e %-14.4e %+.1f%%\n", meas[i].vg, meas[i].id, im, err);
  }
}

}  // namespace

int main() {
  bench::header("Fig. 3 — unified compact model vs measured I-V (CNT / LTPS / IGZO)");
  printf("Paper shows visual agreement across all three technologies with the single\n"
         "Eq. 1 mobility law; we quantify with on-state MAPE (target: single digits).\n");
  run_device(fig3_cnt());
  run_device(fig3_ltps());
  run_device(fig3_igzo());
  bench::rule();
  return 0;
}
