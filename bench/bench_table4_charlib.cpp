// Reproduces paper Table IV: MAPE of the GNN cell-library characterization
// model over the nine metrics, for LTPS and CNT technologies.
//
// Paper scale: 35 cells, 125 training corners (5^3 over VDD/Vth/Cox), 512
// testing corners (8^3), SPICE-generated labels (~700k delay points).
// Defaults here use a cell subset and small corner grids so the SPICE
// labelling finishes in minutes; STCO_T4_* env vars scale up.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/charlib/dataset.hpp"

namespace {

using namespace stco;
using namespace stco::charlib;

struct PaperRow {
  cells::Metric metric;
  double ltps, cnt;
  const char* points;
};
const PaperRow kPaper[] = {
    {cells::Metric::kDelay, 0.47, 0.62, "696320"},
    {cells::Metric::kOutputSlew, 0.79, 0.83, "696320"},
    {cells::Metric::kCapacitance, 0.18, 0.21, "70656"},
    {cells::Metric::kFlipPower, 5.74, 4.96, "696320"},
    {cells::Metric::kNonFlipPower, 3.36, 5.60, "393216"},
    {cells::Metric::kLeakagePower, 2.78, 2.39, "165888"},
    {cells::Metric::kMinPulseWidth, 1.20, 1.67, "8192"},
    {cells::Metric::kMinSetup, 0.50, 0.27, "16384"},
    {cells::Metric::kMinHold, 0.45, 0.38, "16384"},
};

struct TechResult {
  std::array<double, cells::kNumMetrics> mape;
  std::map<std::string, double> delay_by_cell;
  std::size_t train_samples, test_samples;
  double label_seconds, train_seconds;
};

TechResult run_for_kind(tcad::SemiconductorKind kind, std::size_t train_axis,
                        std::size_t test_axis, const std::vector<std::string>& cells_used,
                        std::size_t epochs) {
  CornerRanges ranges;
  ranges.kind = kind;
  if (kind == tcad::SemiconductorKind::kLtps) {
    ranges.vdd_min = 4.0;
    ranges.vdd_max = 6.0;
    ranges.vth_min = 1.0;
    ranges.vth_max = 1.5;
    ranges.cox_min = 1.5e-4;
    ranges.cox_max = 2.5e-4;
  }

  DatasetOptions opts;
  opts.cell_names = cells_used;
  opts.input_slews = {12e-9, 35e-9};
  opts.output_loads = {25e-15, 90e-15};
  opts.on_progress = [](std::size_t done, std::size_t total) {
    printf("    corner %zu/%zu\r", done, total);
    fflush(stdout);
  };

  bench::Timer label_t;
  auto train_set = build_charlib_dataset(corner_grid(ranges, train_axis), opts);
  auto test_set = build_charlib_dataset(corner_grid_offset(ranges, test_axis), opts);
  printf("\n");
  TechResult res;
  res.label_seconds = label_t.seconds();
  res.train_samples = train_set.size();
  res.test_samples = test_set.size();

  CellCharModelConfig mcfg;
  mcfg.train.epochs = epochs;
  CellCharModel model(mcfg);
  bench::Timer train_t;
  model.fit_normalization(train_set);
  model.train(train_set);
  res.train_seconds = train_t.seconds();
  res.mape = model.mape_by_metric(test_set);
  res.delay_by_cell = model.mape_by_cell(test_set, cells::Metric::kDelay);
  return res;
}

}  // namespace

int main() {
  using namespace stco;
  const std::size_t train_axis = stco::bench::env_size("STCO_T4_TRAIN_AXIS", 3, 5);
  const std::size_t test_axis = stco::bench::env_size("STCO_T4_TEST_AXIS", 2, 8);
  const std::size_t epochs = stco::bench::env_size("STCO_T4_EPOCHS", 60, 150);
  const std::size_t n_cells = stco::bench::env_size("STCO_T4_CELLS", 10, 35);

  std::vector<std::string> cells_used;
  // Interleave combinational + sequential so all nine metrics have data.
  const std::vector<std::string> preferred = {
      "INV",  "NAND2", "NOR2",  "AND2",  "XOR2", "AOI21", "MUX2", "DFF",
      "DLATCH", "NAND3", "OR2", "OAI21", "BUF",  "XNOR2", "NOR3", "DFFN"};
  for (std::size_t i = 0; i < preferred.size() && cells_used.size() < n_cells; ++i)
    cells_used.push_back(preferred[i]);
  if (n_cells >= 35) cells_used.clear();  // empty = the full 35-cell library

  stco::bench::header("Table IV — MAPE of GNN cell library prediction (testing corners)");
  printf("Cells: %zu, train corners %zu^3, test corners %zu^3 (offset grid)\n",
         n_cells, train_axis, test_axis);

  printf("  [LTPS] SPICE labelling + GCN training...\n");
  const auto ltps = run_for_kind(stco::tcad::SemiconductorKind::kLtps, train_axis,
                                 test_axis, cells_used, epochs);
  printf("  LTPS: %zu train / %zu test samples, labels %.1f s, training %.1f s\n",
         ltps.train_samples, ltps.test_samples, ltps.label_seconds, ltps.train_seconds);
  printf("  [CNT] SPICE labelling + GCN training...\n");
  const auto cnt = run_for_kind(stco::tcad::SemiconductorKind::kCnt, train_axis,
                                test_axis, cells_used, epochs);
  printf("  CNT : %zu train / %zu test samples, labels %.1f s, training %.1f s\n\n",
         cnt.train_samples, cnt.test_samples, cnt.label_seconds, cnt.train_seconds);

  printf("%-22s %-12s %-12s | %-10s %-10s %s\n", "", "LTPS ours", "CNT ours",
         "LTPS paper", "CNT paper", "paper #points");
  stco::bench::rule();
  for (const auto& row : kPaper) {
    const std::size_t m = static_cast<std::size_t>(row.metric);
    auto fmt = [](double v) {
      static char buf[2][32];
      static int which = 0;
      which ^= 1;
      if (v < 0)
        snprintf(buf[which], sizeof(buf[which]), "n/a");
      else
        snprintf(buf[which], sizeof(buf[which]), "%.2f%%", v);
      return buf[which];
    };
    printf("%-22s %-12s %-12s | %-9.2f%% %-9.2f%% %s\n", cells::to_string(row.metric),
           fmt(ltps.mape[m]), fmt(cnt.mape[m]), row.ltps, row.cnt, row.points);
  }
  stco::bench::rule();
  printf("Shape check: timing/cap metrics land tightest; flip/non-flip power worst\n"
         "(the paper attributes this to dynamic power spanning orders of magnitude).\n");

  printf("\nPer-cell delay MAPE (CNT), worst offenders first:\n");
  std::vector<std::pair<double, std::string>> by_err;
  for (const auto& [cell, m] : cnt.delay_by_cell) by_err.push_back({m, cell});
  std::sort(by_err.rbegin(), by_err.rend());
  for (const auto& [m, cell] : by_err) printf("  %-8s %6.2f%%\n", cell.c_str(), m);
  return 0;
}
