// Reproduces paper Table II: MSE of the GNN surrogate TCAD models (Poisson
// emulator, IV predictor) on validation / testing / unseen splits plus R^2
// on the unseen split.
//
// Scale-down: the paper trains on 50,000 devices and tests 32,000 unseen
// samples with ~1M / ~0.15M parameter models on GPU. Defaults here train a
// reduced-width RelGAT on a few hundred CPU-generated devices; set
// STCO_BENCH_SCALE=large (or STCO_T2_* vars) for bigger sweeps.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/surrogate/surrogate.hpp"

int main() {
  using namespace stco;
  using namespace stco::surrogate;

  // More devices at fewer epochs generalizes better than the reverse: the
  // TCAD substrate generates a device in ~4 ms while one training epoch
  // costs O(n_train) forward+backward passes.
  const std::size_t n_train = bench::env_size("STCO_T2_TRAIN", 300, 2000);
  const std::size_t n_val = bench::env_size("STCO_T2_VAL", 60, 300);
  const std::size_t n_test = bench::env_size("STCO_T2_TEST", 60, 300);
  const std::size_t n_unseen = bench::env_size("STCO_T2_UNSEEN", 120, 600);
  const std::size_t p_epochs = bench::env_size("STCO_T2_POISSON_EPOCHS", 60, 120);
  const std::size_t iv_epochs = bench::env_size("STCO_T2_IV_EPOCHS", 90, 160);

  bench::header("Table II — MSE of surrogate TCAD models");
  printf("Generating device population: %zu train / %zu val / %zu test, %zu unseen...\n",
         n_train, n_val, n_test, n_unseen);

  bench::Timer gen_t;
  PopulationOptions opts;
  const auto pool = generate_population(n_train + n_val + n_test, /*seed=*/2024, opts);
  // Unseen split: fresh seed — devices the training distribution never saw.
  const auto unseen = generate_population(n_unseen, /*seed=*/777, opts);
  printf("TCAD dataset generated in %.1f s (%.1f ms/device: 2-D Poisson + IV solve)\n",
         gen_t.seconds(),
         1e3 * gen_t.seconds() / static_cast<double>(pool.size() + unseen.size()));

  std::span<const DeviceSample> train(pool.data(), n_train);
  std::span<const DeviceSample> val(pool.data() + n_train, n_val);
  std::span<const DeviceSample> test(pool.data() + n_train + n_val, n_test);
  std::span<const DeviceSample> uns(unseen.data(), unseen.size());

  SurrogateConfig cfg;
  cfg.poisson_hidden = 16;
  cfg.iv_hidden = 24;
  cfg.poisson_train.epochs = p_epochs;
  cfg.iv_train.epochs = iv_epochs;
  cfg.poisson_train.on_epoch = [](std::size_t e, double l) {
    if (e % 10 == 0) printf("  poisson epoch %3zu  loss %.3e\n", e, l);
    return true;
  };
  cfg.iv_train.on_epoch = [](std::size_t e, double l) {
    if (e % 20 == 0) printf("  iv      epoch %3zu  loss %.3e\n", e, l);
    return true;
  };
  TcadSurrogate sur(cfg);
  printf("Poisson emulator: %zu parameters (paper: ~1M, 12-layer 2-head RelGAT)\n",
         sur.poisson_model().num_parameters());
  printf("IV predictor    : %zu parameters (paper: ~0.15M, 3-layer 1-head RelGAT)\n",
         sur.iv_model().num_parameters());

  bench::Timer train_t;
  sur.train_poisson(train);
  sur.train_iv(train);
  printf("Training finished in %.1f s\n\n", train_t.seconds());

  const auto pe = sur.evaluate_poisson(val, test, uns);
  const auto iv = sur.evaluate_iv(val, test, uns);

  printf("%-18s %-14s %-14s %-14s %-10s\n", "", "Validation", "Testing",
         "Unseen", "R2(unseen)");
  bench::rule();
  printf("%-18s %-14.3e %-14.3e %-14.3e %-10.4f\n", "Poisson Emulator",
         pe.validation_mse, pe.testing_mse, pe.unseen_mse, pe.unseen_r2);
  printf("%-18s %-14.3e %-14.3e %-14.3e %-10.4f\n", "IV Predictor",
         iv.validation_mse, iv.testing_mse, iv.unseen_mse, iv.unseen_r2);
  bench::rule();
  printf("Paper reference (50k-device training, GPU-scale models):\n");
  printf("%-18s %-14s %-14s %-14s %-10s\n", "Poisson Emulator", "6.17e-05",
         "7.02e-05", "7.15e-05 (32K)", "0.9999");
  printf("%-18s %-14s %-14s %-14s %-10s\n", "IV Predictor", "1.67e-03", "1.60e-03",
         "1.78e-03 (32K)", "0.9999");
  printf("\nShape check: val ~ test ~ unseen MSE (no overfitting cliff), R2 near 1.\n");
  return 0;
}
