// Ablation bench (extension beyond the paper's tables): which parts of the
// RelGAT surrogate architecture matter? Sweeps edge features on/off,
// layer norm on/off, and depth, on a shared Poisson-emulator dataset, and
// reports validation MSE per configuration.
//
// The paper motivates edge features ("spatial relationship embedding ...
// inspired by finite element methods") and layer normalization ("enhancing
// model convergence and stability"); this bench quantifies both claims.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/gnn/trainer.hpp"
#include "src/numeric/stats.hpp"
#include "src/surrogate/surrogate.hpp"
#include "src/tensor/ops.hpp"

namespace {

using namespace stco;
using namespace stco::surrogate;

double train_and_eval(const gnn::RelGatConfig& cfg, std::span<const DeviceSample> train,
                      std::span<const DeviceSample> val, std::size_t epochs,
                      double* train_seconds) {
  numeric::Rng rng(42);
  gnn::RelGatModel model(cfg, rng);
  auto loss = [&](std::size_t i) {
    const auto& g = train[i].poisson_graph;
    // stco-lint: allow(training-path-inference) gradient step
    return tensor::mse_loss(model.forward(g), g.node_target_tensor(1));
  };
  gnn::TrainConfig tc;
  tc.epochs = epochs;
  tc.lr = 3e-3;
  bench::Timer t;
  gnn::train(model.parameters(), loss, train.size(), tc);
  *train_seconds = t.seconds();

  numeric::Vec pred, act;
  for (const auto& s : val) {
    // stco-lint: allow(training-path-inference) throwaway ablation probe
    const auto out = model.forward(s.poisson_graph).value();
    pred.insert(pred.end(), out.begin(), out.end());
    act.insert(act.end(), s.poisson_graph.node_targets.begin(),
               s.poisson_graph.node_targets.end());
  }
  return numeric::mse(pred, act);
}

}  // namespace

int main() {
  const std::size_t n_train = stco::bench::env_size("STCO_ABL_TRAIN", 160, 400);
  const std::size_t n_val = stco::bench::env_size("STCO_ABL_VAL", 40, 100);
  const std::size_t epochs = stco::bench::env_size("STCO_ABL_EPOCHS", 60, 100);

  stco::bench::header("Ablation — RelGAT architecture choices (Poisson emulator)");
  printf("Dataset: %zu train / %zu val devices, %zu epochs per config\n\n", n_train,
         n_val, epochs);

  PopulationOptions opts;
  const auto pool = generate_population(n_train + n_val, /*seed=*/99, opts);
  std::span<const DeviceSample> train(pool.data(), n_train);
  std::span<const DeviceSample> val(pool.data() + n_train, n_val);

  struct Config {
    const char* name;
    std::size_t layers;
    bool edge_features;
    bool layer_norm;
  };
  const Config configs[] = {
      {"paper config (deep, edge feats, LN)", 8, true, true},
      {"no edge features", 8, false, true},
      {"no layer norm", 8, true, false},
      {"shallow (3 layers)", 3, true, true},
      {"shallow, no edge feats", 3, false, true},
  };

  printf("%-38s %-14s %-12s %s\n", "configuration", "val MSE", "params", "train s");
  stco::bench::rule();
  double baseline = 0.0;
  for (const auto& c : configs) {
    gnn::RelGatConfig cfg = gnn::poisson_emulator_config(kNodeDim, kEdgeDim, 16);
    cfg.num_layers = c.layers;
    cfg.use_edge_features = c.edge_features;
    cfg.use_layer_norm = c.layer_norm;
    numeric::Rng prng(1);
    const gnn::RelGatModel probe(cfg, prng);
    double secs = 0.0;
    const double mse = train_and_eval(cfg, train, val, epochs, &secs);
    if (baseline == 0.0) baseline = mse;
    printf("%-38s %-14.3e %-12zu %.1f   (%.2fx vs full)\n", c.name, mse,
           probe.num_parameters(), secs, mse / baseline);
  }
  stco::bench::rule();
  printf("Reading: >1.0x means the ablated variant is worse than the full model. At\n"
         "this reduced scale effects can be modest: the mesh encoding also carries\n"
         "absolute positions as node attributes, so spatial edge features are partly\n"
         "redundant; depth matters most for propagating boundary information.\n");
  return 0;
}
