// Reproduces paper Table I: per-iteration runtime of the traditional STCO
// flow versus the fast (GNN-accelerated) flow over ten benchmarks, and the
// resulting speedups (paper: 1.9x - 14.1x).
//
// Substitution accounting (see DESIGN.md): the "System Evaluation" column
// (commercial synthesis / P&R / DRC-LVS) and the commercial technology-loop
// constants (142.07 s TCAD, ~1900 s characterization) are calibrated to the
// paper's measurements; the fast path is BOTH calibrated (paper column) and
// measured live on this machine's GNN stack. Our own STA-based system
// evaluation time is also reported to show it is negligible next to the
// calibrated commercial numbers.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench/bench_util.hpp"
#include "src/charlib/dataset.hpp"
#include "src/exec/context.hpp"
#include "src/flow/benchmarks.hpp"
#include "src/flow/sta.hpp"
#include "src/stco/runtime_model.hpp"
#include "src/surrogate/surrogate.hpp"

int main() {
  using namespace stco;
  bench::header("Table I — runtime comparison, fast STCO vs traditional flow");

  // --- measure the fast technology loop on this machine -------------------
  // Environment setup: construct both surrogate models + the charlib model
  // (weights untrained — inference cost is identical; Table I measures
  // runtime, not accuracy).
  bench::Timer env_t;
  surrogate::SurrogateConfig scfg;
  surrogate::TcadSurrogate sur(scfg);
  charlib::CellCharModelConfig ccfg;
  charlib::CellCharModel cmodel(ccfg);
  // fit_normalization needs one sample; build a minimal dataset.
  {
    charlib::DatasetOptions dopts;
    dopts.cell_names = {"INV"};
    dopts.input_slews = {20e-9};
    dopts.output_loads = {50e-15};
    charlib::CornerRanges r;
    const auto tiny = charlib::build_charlib_dataset(charlib::corner_grid(r, 1), dopts);
    cmodel.fit_normalization(tiny);
  }
  const double measured_env = env_t.seconds();

  // GNN TCAD inference: one device, Poisson emulator + IV predictor (the
  // paper's 1.38 s covers its much larger GPU models + batch).
  bench::Timer tcad_t;
  {
    surrogate::PopulationOptions popt;
    const auto samples = surrogate::generate_population(1, /*seed=*/1, popt);
    tcad_t.reset();  // population generation is the *traditional* cost
    (void)sur.predict_potential(samples[0].poisson_graph);
    (void)sur.predict_current(samples[0].iv_graph);
  }
  const double measured_tcad = tcad_t.seconds();

  // GNN library characterization: full mapped cell set through the model.
  bench::Timer char_t;
  flow::LibraryBuildOptions lopts;
  const auto gnn_lib = flow::build_library_gnn(cmodel, compact::cnt_tech(), lopts);
  const double measured_char = char_t.seconds();
  (void)gnn_lib;

  // Reference SPICE library for the STA column (the GNN model above is
  // untrained — its build *time* is what Table I measures, but timing
  // numbers for the STA sanity column should be physical).
  flow::LibraryBuildOptions slopts;
  slopts.slew_axis = {10e-9, 40e-9};
  slopts.load_axis = {20e-15, 100e-15};
  bench::Timer spice_t;
  const auto spice_lib = flow::build_library_spice(compact::cnt_tech(), slopts);
  printf("(reference: transistor-level SPICE library characterization on this machine "
         "took %.1f s)\n", spice_t.seconds());

  // Our own (non-commercial) system evaluation cost per benchmark: STA.
  printf("Fast path measured here: env setup %.2f s, TCAD inference %.4f s, "
         "library characterization %.3f s\n",
         measured_env, measured_tcad, measured_char);
  printf("Paper fast path: env 8.12 s, TCAD 1.38 s, characterization 8.88 s "
         "(GPU-scale models)\n\n");

  printf("%-11s | %-8s | %-22s | %-20s | %-9s | %s\n", "Benchmark", "SysEval",
         "Traditional (s)", "Ours (s)", "Speedup", "paper spdup");
  printf("%-11s | %-8s | %-22s | %-20s | %-9s |\n", "", "(paper)",
         "syseval+TCAD+char", "syseval+env+fast", "");
  bench::rule('-', 100);
  for (const auto& ref : table1_reference()) {
    const auto calibrated = table1_row(ref.benchmark);
    const auto measured = table1_row(ref.benchmark, {}, measured_env, measured_tcad,
                                     measured_char);
    // Our STA time for this benchmark (system evaluation substitute).
    bench::Timer sta_t;
    const auto nl = flow::make_benchmark(ref.benchmark);
    const auto rep = flow::analyze(nl, spice_lib);
    const double sta_s = sta_t.seconds();
    printf("%-11s | %-8.0f | %-22.0f | %6.1f (meas %6.1f) | %5.1fx    | %.1fx   [STA here: %.4f s, fmax %.2f MHz]\n",
           ref.benchmark.c_str(), ref.system_evaluation, calibrated.traditional,
           calibrated.ours, measured.ours, calibrated.speedup, ref.speedup, sta_s,
           rep.fmax / 1e6);
  }
  bench::rule('-', 100);
  printf("Shape check: speedup decays from ~14x (s386, tech loop dominates) to ~2x\n"
         "(Darkriscv, system evaluation dominates) exactly as in the paper.\n");

  // --- parallel scaling of the traditional technology loop ----------------
  // The same SPICE library build on exec contexts of growing width. The
  // result is bit-identical across rows (determinism contract); only the
  // wall clock changes. Useful speedup needs real cores — on a 1-CPU
  // machine the wider rows just measure scheduling overhead.
  printf("\nParallel scaling — SPICE library characterization (exec::Context):\n");
  printf("%-9s | %-12s | %-9s | %s\n", "threads", "seconds", "speedup", "scheduler");
  bench::rule('-', 86);
  std::ostringstream rows;
  rows << "  \"rows\": [\n";
  double serial_s = 0.0;
  const std::size_t thread_counts[] = {1, 2, 8};
  for (std::size_t i = 0; i < 3; ++i) {
    const std::size_t nt = thread_counts[i];
    exec::Context ctx(nt);
    bench::Timer t;
    const auto lib = flow::build_library_spice(compact::cnt_tech(), slopts, ctx);
    const double secs = t.seconds();
    (void)lib;
    if (i == 0) serial_s = secs;
    const auto st = ctx.stats();
    printf("%-9zu | %-12.2f | %-9.2f | %s\n", nt, secs,
           serial_s / std::max(1e-9, secs), st.summary().c_str());
    rows << "    {\"threads\": " << nt << ", \"seconds\": " << secs
         << ", \"speedup\": " << serial_s / std::max(1e-9, secs)
         << ", \"tasks\": " << st.tasks_run << ", \"steals\": " << st.steals
         << "}" << (i + 1 < 3 ? "," : "") << "\n";
  }
  rows << "  ]";
  bench::write_bench_json("BENCH_parallel.json", "build_library_spice", rows.str());
  bench::rule('-', 86);
  printf("(rows written to BENCH_parallel.json)\n");

  // Self-check: the emitted file must be valid JSON and carry the obs
  // metrics snapshot (schema-tagged) alongside the bench rows.
  {
    std::ifstream f("BENCH_parallel.json");
    std::ostringstream ss;
    ss << f.rdbuf();
    const std::string body = ss.str();
    if (!obs::json_valid(body) ||
        body.find("\"obs_schema_version\"") == std::string::npos) {
      std::fprintf(stderr,
                   "BENCH_parallel.json failed validation: %s\n",
                   !obs::json_valid(body) ? "not valid JSON"
                                          : "missing obs_schema_version");
      return 1;
    }
  }
  return 0;
}
