// Reproduces the paper's section II component-speedup claims with
// google-benchmark micro-measurements:
//
//   * TCAD device simulation: commercial tools 142.07 s avg (576-device 2-D
//     calibrated study) -> GNN surrogate 1.38 s   (>100x)
//   * cell library characterization: ~1900 s -> 8.88 s (>100x)
//
// Here both sides run on the same machine: the physics solvers (2-D Newton
// Poisson + transport; transistor-level SPICE) against one GNN forward
// pass, so the speedup ratio is genuinely measured, not assumed.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "src/cells/characterize.hpp"
#include "src/charlib/dataset.hpp"
#include "src/flow/liberty.hpp"
#include "src/surrogate/surrogate.hpp"
#include "src/tcad/drift_diffusion.hpp"

namespace {

using namespace stco;

// Shared fixtures built once.
struct Fixtures {
  tcad::TftDevice device;
  tcad::Bias bias{3.0, 1.0, 0.0};
  std::unique_ptr<surrogate::TcadSurrogate> sur;
  surrogate::DeviceSample sample;
  std::unique_ptr<charlib::CellCharModel> cmodel;

  Fixtures() {
    device.semi = tcad::igzo_params();
    surrogate::SurrogateConfig cfg;
    sur = std::make_unique<surrogate::TcadSurrogate>(cfg);
    surrogate::PopulationOptions popt;
    sample = surrogate::generate_population(1, /*seed=*/5, popt)[0];

    charlib::CellCharModelConfig ccfg;
    cmodel = std::make_unique<charlib::CellCharModel>(ccfg);
    charlib::DatasetOptions dopts;
    dopts.cell_names = {"INV"};
    dopts.input_slews = {20e-9};
    dopts.output_loads = {50e-15};
    charlib::CornerRanges r;
    cmodel->fit_normalization(
        charlib::build_charlib_dataset(charlib::corner_grid(r, 1), dopts));
  }
};

Fixtures& fx() {
  static Fixtures f;
  return f;
}

void BM_TcadPoissonSolve2D(benchmark::State& state) {
  for (auto _ : state) {
    auto sol = tcad::solve_poisson(fx().device, fx().bias, 14, 4, 3);
    benchmark::DoNotOptimize(sol.potential.data());
  }
}
BENCHMARK(BM_TcadPoissonSolve2D);

// The reference-fidelity engine (what "commercial TCAD, 142.07 s/device"
// stands in for): full 2-D drift-diffusion on a fine mesh.
void BM_TcadDriftDiffusion2D(benchmark::State& state) {
  for (auto _ : state) {
    auto sol = tcad::solve_drift_diffusion(fx().device, fx().bias);
    benchmark::DoNotOptimize(sol.drain_current);
  }
}
BENCHMARK(BM_TcadDriftDiffusion2D)->Unit(benchmark::kMillisecond);

void BM_TcadIvSweep(benchmark::State& state) {
  const std::vector<double> vgs = {0, 1, 2, 3, 4, 5};
  for (auto _ : state) {
    auto curve = tcad::transfer_curve(fx().device, 2.0, vgs);
    benchmark::DoNotOptimize(curve.data());
  }
}
BENCHMARK(BM_TcadIvSweep);

void BM_GnnPoissonEmulatorInference(benchmark::State& state) {
  for (auto _ : state) {
    auto out = fx().sur->predict_potential(fx().sample.poisson_graph);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_GnnPoissonEmulatorInference);

void BM_GnnIvPredictorInference(benchmark::State& state) {
  for (auto _ : state) {
    double id = fx().sur->predict_current(fx().sample.iv_graph);
    benchmark::DoNotOptimize(id);
  }
}
BENCHMARK(BM_GnnIvPredictorInference);

void BM_SpiceCharacterizeInv(benchmark::State& state) {
  cells::CharConfig cfg;
  cfg.tech = compact::cnt_tech();
  for (auto _ : state) {
    auto ch = cells::characterize_cell(cells::find_cell("INV"), cfg);
    benchmark::DoNotOptimize(ch.leakage_power);
  }
}
BENCHMARK(BM_SpiceCharacterizeInv);

void BM_SpiceCharacterizeDff(benchmark::State& state) {
  cells::CharConfig cfg;
  cfg.tech = compact::cnt_tech();
  for (auto _ : state) {
    auto ch = cells::characterize_cell(cells::find_cell("DFF"), cfg);
    benchmark::DoNotOptimize(ch.min_setup);
  }
}
BENCHMARK(BM_SpiceCharacterizeDff);

void BM_GnnCharacterizeCell(benchmark::State& state) {
  const auto& def = cells::find_cell("NAND2");
  charlib::PinContext ctx;
  for (const auto& pin : def.inputs) {
    ctx.current_state[pin] = false;
    ctx.next_state[pin] = false;
  }
  // Build the pin name char-by-char: assigning a string literal trips a
  // libstdc++ -Wrestrict false positive under GCC 12 at -O2 (GCC bug
  // 105651), which STCO_WERROR would promote to an error.
  ctx.toggling_pin.clear();
  ctx.toggling_pin.push_back('A');
  ctx.next_state["A"] = true;
  const auto g = charlib::encode_cell(def, compact::cnt_tech(), {}, ctx);
  for (auto _ : state) {
    double d = fx().cmodel->predict(g, cells::Metric::kDelay);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_GnnCharacterizeCell);

void BM_SpiceLibraryBuild(benchmark::State& state) {
  flow::LibraryBuildOptions opts;
  opts.cell_names = {"INV", "NAND2", "NOR2"};
  opts.slew_axis = {10e-9, 40e-9};
  opts.load_axis = {20e-15, 100e-15};
  for (auto _ : state) {
    auto lib = flow::build_library_spice(compact::cnt_tech(), opts);
    benchmark::DoNotOptimize(lib.cells.size());
  }
}
BENCHMARK(BM_SpiceLibraryBuild)->Unit(benchmark::kMillisecond);

void BM_GnnLibraryBuild(benchmark::State& state) {
  flow::LibraryBuildOptions opts;
  for (auto _ : state) {
    auto lib = flow::build_library_gnn(*fx().cmodel, compact::cnt_tech(), opts);
    benchmark::DoNotOptimize(lib.cells.size());
  }
}
BENCHMARK(BM_GnnLibraryBuild)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf(
      "\nPaper component speedups (commercial tooling -> GNN): TCAD 142.07 s -> 1.38 s"
      "\n(~103x), characterization ~1900 s -> 8.88 s (~214x), shared setup 8.12 s.\n"
      "The commercial-TCAD stand-in is BM_TcadDriftDiffusion2D (full 2-D\n"
      "Scharfetter-Gummel at reference mesh); against BM_GnnIvPredictorInference\n"
      "that is a measured several-hundred-x gap. Likewise BM_SpiceCharacterizeDff\n"
      "vs BM_GnnCharacterizeCell for the characterization task. The coarse\n"
      "BM_TcadPoissonSolve2D (dataset-generation mesh) is intentionally cheap and\n"
      "sits near the deep emulator's own inference cost.\n");
  return 0;
}
