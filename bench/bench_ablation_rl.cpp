// Ablation bench (extension): the RL agent versus random search on the real
// STCO loop — does guided exploration reach a better technology point with
// the same evaluation budget?
//
// Runs the full library-characterization + STA pipeline per evaluation (the
// SPICE path, so this is the "traditional" loop the paper accelerates) on a
// small benchmark with a coarse technology grid, then compares search
// trajectories.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/stco/loop.hpp"
#include "src/stco/pareto.hpp"

int main() {
  using namespace stco;
  const std::size_t grid_n = bench::env_size("STCO_RL_GRID", 3, 5);
  const std::size_t episodes = bench::env_size("STCO_RL_EPISODES", 4, 12);

  bench::header("Ablation — RL agent vs random search on the STCO loop (s298)");
  StcoConfig cfg;
  cfg.benchmark = "s298";
  cfg.grid_n = grid_n;
  cfg.rl.episodes = episodes;
  cfg.rl.steps_per_episode = 8;

  printf("Grid %zu^3 over (VDD, Vth, Cox); every evaluation = SPICE cell library\n"
         "characterization + STA on s298 (%zu gates).\n\n",
         grid_n, flow::make_benchmark("s298").num_gates());

  StcoEngine rl_engine(cfg, SpiceBackend{});
  bench::Timer rl_t;
  const auto rl = rl_engine.optimize();
  const double rl_seconds = rl_t.seconds();

  StcoEngine rnd_engine(cfg, SpiceBackend{});
  bench::Timer rnd_t;
  const auto rnd = rnd_engine.optimize_random(rl.unique_evaluations);
  const double rnd_seconds = rnd_t.seconds();

  printf("%-16s %-12s %-12s %-10s %-28s %s\n", "search", "best cost", "evals",
         "seconds", "best (VDD, Vth, Cox)", "lib-build share");
  bench::rule();
  auto print_row = [&](const char* name, const SearchResult& r, double secs,
                       const StcoTiming& timing) {
    printf("%-16s %-12.4f %-12zu %-10.1f (%.2f V, %.2f V, %.1f nF/cm^2)   %.0f%%\n",
           name, r.best_cost, r.unique_evaluations, secs, r.best_point.vdd,
           r.best_point.vth, r.best_point.cox * 1e5,
           100.0 * timing.library_seconds /
               std::max(1e-9, timing.library_seconds + timing.sta_seconds));
  };
  print_row("Q-learning", rl, rl_seconds, rl_engine.timing());
  print_row("random", rnd, rnd_seconds, rnd_engine.timing());
  bench::rule();

  printf("\nBest-so-far trajectory (cost after each evaluation):\n  RL    :");
  for (std::size_t i = 0; i < rl.best_cost_history.size();
       i += std::max<std::size_t>(1, rl.best_cost_history.size() / 10))
    printf(" %.3f", rl.best_cost_history[i]);
  printf("\n  random:");
  for (std::size_t i = 0; i < rnd.best_cost_history.size();
       i += std::max<std::size_t>(1, rnd.best_cost_history.size() / 10))
    printf(" %.3f", rnd.best_cost_history[i]);
  printf("\n\nNote the library-build share of wall time: this is the cost the paper's\n"
         "GNN fast path removes from every iteration.\n");

  // Multi-objective view: the scalarized search finds one point; the Pareto
  // front over the full (cached-by-reuse) grid shows the trade-off surface.
  printf("\nPareto front over the full %zu^3 grid (delay / power / area):\n", grid_n);
  StcoEngine pareto_engine(cfg, SpiceBackend{});
  const TechGrid grid(cfg.ranges, cfg.grid_n);
  const auto sweep = sweep_pareto(grid, [&](const compact::TechnologyPoint& t) {
    return pareto_engine.evaluate(t);
  });
  printf("  %zu of %zu grid points are Pareto-optimal:\n", sweep.front.size(),
         sweep.all.size());
  for (const auto& p : sweep.front)
    printf("  VDD %.2f V, Vth %.2f V, Cox %.1f nF/cm^2 -> period %.2f us, "
           "power %.2e W, area %.3f mm^2\n",
           p.tech.vdd, p.tech.vth, p.tech.cox * 1e5, p.delay * 1e6, p.power,
           p.area * 1e6);
  return 0;
}
