// Inference-engine bench: compiled plan (src/gnn/infer) vs the autograd
// training-path forward, on the two RelGAT surrogate architectures and the
// charlib GCN trunk. Reports single-graph latency, the plan's speedup, and
// batched throughput at growing batch sizes, and cross-checks parity at
// 1e-12 relative while it measures.
//
// Emits BENCH_inference.json (with the embedded obs snapshot). Exit is
// nonzero on a parity or JSON-schema failure — never on a speed threshold,
// so CI timing noise cannot flake the job.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/gnn/batch.hpp"
#include "src/gnn/infer/gcn_plan.hpp"
#include "src/gnn/infer/predictor.hpp"
#include "src/gnn/models.hpp"
#include "src/tensor/ops.hpp"

namespace {

using namespace stco;

constexpr std::size_t kNodeDim = 8;
constexpr std::size_t kEdgeDim = 3;

gnn::Graph make_graph(std::size_t n, std::uint64_t seed) {
  numeric::Rng rng(seed);
  gnn::Graph g;
  g.num_nodes = n;
  g.node_dim = kNodeDim;
  g.edge_dim = kEdgeDim;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    g.edge_src.push_back(i);
    g.edge_dst.push_back(i + 1);
    g.edge_src.push_back(i + 1);
    g.edge_dst.push_back(i);
  }
  for (std::size_t i = 0; i + 4 < n; i += 4) {  // mesh-like cross links
    g.edge_src.push_back(i);
    g.edge_dst.push_back(i + 4);
    g.edge_src.push_back(i + 4);
    g.edge_dst.push_back(i);
  }
  g.node_features.resize(n * kNodeDim);
  for (auto& v : g.node_features) v = rng.normal();
  g.edge_features.resize(g.num_edges() * kEdgeDim);
  for (auto& v : g.edge_features) v = rng.normal();
  g.node_targets.assign(n, 0.0);
  g.graph_targets = {0.0};
  return g;
}

double max_rel_err(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return 1e300;
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double scale = std::max({std::fabs(a[i]), std::fabs(b[i]), 1e-12});
    worst = std::max(worst, std::fabs(a[i] - b[i]) / scale);
  }
  return worst;
}

/// Per-call microseconds as the best of several timing rounds. The container
/// CPU budget makes single-shot wall timing noisy by 20%+; the minimum round
/// is the standard robust estimator for compute-bound loops (scheduler
/// interference only ever adds time). Applied identically to both sides of
/// every A/B, so it cannot bias the ratio.
template <class F>
double best_round_us(std::size_t reps, F&& f) {
  constexpr std::size_t kRounds = 5;
  const std::size_t per = std::max<std::size_t>(1, reps / kRounds);
  double best = 1e300;
  for (std::size_t r = 0; r < kRounds; ++r) {
    bench::Timer t;
    for (std::size_t i = 0; i < per; ++i) f();
    best = std::min(best, t.seconds() / static_cast<double>(per));
  }
  return best * 1e6;
}

struct LatencyRow {
  const char* model;
  double train_us = 0.0;  ///< training-path forward, per graph
  double plan_us = 0.0;   ///< compiled plan, per graph
  double speedup = 0.0;
  double parity = 0.0;  ///< max relative error plan vs training path
};

/// Single-graph latency A/B for one RelGAT architecture.
LatencyRow bench_relgat(const char* name, const gnn::RelGatConfig& cfg,
                        std::size_t nodes, std::size_t reps) {
  numeric::Rng rng(42);
  const gnn::RelGatModel model(cfg, rng);
  gnn::Predictor pred;
  pred.compile(model);
  const gnn::Graph g = make_graph(nodes, 7);

  LatencyRow row;
  row.model = name;
  // stco-lint: allow(training-path-inference) A/B baseline measurement
  std::vector<double> ref = model.forward(g).value();
  row.parity = max_rel_err(pred.predict_one(g), ref);

  double sink = 0.0;
  row.train_us = best_round_us(reps, [&] {
    // stco-lint: allow(training-path-inference) A/B baseline measurement
    sink += model.forward(g).value()[0];
  });
  row.plan_us = best_round_us(reps, [&] { sink += pred.predict_one(g)[0]; });
  row.speedup = row.train_us / std::max(1e-9, row.plan_us);
  if (sink == 1e300) std::printf("(unreachable %f)\n", sink);  // defeat DCE
  return row;
}

}  // namespace

int main() {
  const std::size_t reps = bench::env_size("STCO_INF_REPS", 200, 2000);
  const std::size_t nodes = bench::env_size("STCO_INF_NODES", 60, 200);

  bench::header("Inference engine — compiled plan vs training-path forward");
  std::printf("Graph: %zu nodes, %zu reps per measurement\n\n", nodes, reps);

  // --- single-graph latency ----------------------------------------------
  gnn::RelGatConfig poisson_cfg =
      gnn::poisson_emulator_config(kNodeDim, kEdgeDim, 24);
  gnn::RelGatConfig iv_cfg = gnn::iv_predictor_config(kNodeDim, kEdgeDim, 24);

  std::printf("%-16s | %-14s | %-14s | %-8s | %s\n", "model", "train-path us",
              "plan us", "speedup", "max rel err");
  bench::rule('-', 86);
  const LatencyRow rows[] = {
      bench_relgat("poisson-12L2H", poisson_cfg, nodes, reps),
      bench_relgat("iv-3L1H", iv_cfg, nodes, reps),
  };
  bool parity_ok = true;
  for (const auto& r : rows) {
    std::printf("%-16s | %-14.1f | %-14.1f | %-8.1f | %.2e\n", r.model,
                r.train_us, r.plan_us, r.speedup, r.parity);
    parity_ok = parity_ok && r.parity <= 1e-12;
  }

  // --- charlib GCN trunk row ---------------------------------------------
  // The cell-characterization architecture: Linear -> 3x GCN -> pool ->
  // per-metric MLP heads, via GcnPlan (the grid fast path in
  // flow::build_library_gnn).
  double gcn_train_us = 0.0, gcn_plan_us = 0.0, gcn_parity = 0.0;
  {
    numeric::Rng rng(11);
    const gnn::Linear proj(kNodeDim, 32, rng);
    std::vector<gnn::GcnLayer> layers;
    for (int i = 0; i < 3; ++i)
      layers.emplace_back(32, 32, rng, gnn::Activation::kRelu);
    std::vector<gnn::Mlp> heads;
    for (int i = 0; i < 9; ++i)
      heads.emplace_back(std::vector<std::size_t>{32, 32, 1}, rng);
    const auto plan = gnn::infer::compile_gcn_plan(proj, layers, heads);
    const gnn::Graph g = make_graph(24, 13);
    const std::size_t head_ids[] = {0, 1};

    auto train_once = [&]() {
      // stco-lint: allow(training-path-inference) A/B baseline measurement
      tensor::Tensor h = proj.forward(g.node_tensor());
      // stco-lint: allow(training-path-inference) A/B baseline measurement
      for (const auto& l : layers) h = l.forward(h, g);
      const tensor::Tensor pooled = tensor::mean_rows(h);
      // stco-lint: allow(training-path-inference) A/B baseline measurement
      return std::vector<double>{heads[0].forward(pooled).item(),
                                 // stco-lint: allow(training-path-inference) A/B baseline measurement
                                 heads[1].forward(pooled).item()};
    };
    const auto ref = train_once();
    gcn_parity =
        max_rel_err(plan.run_one(g, head_ids, gnn::infer::scratch_arena()), ref);
    parity_ok = parity_ok && gcn_parity <= 1e-12;

    double sink = 0.0;
    gcn_train_us = best_round_us(reps, [&] { sink += train_once()[0]; });
    gcn_plan_us = best_round_us(reps, [&] {
      sink += plan.run_one(g, head_ids, gnn::infer::scratch_arena())[0];
    });
    if (sink == 1e300) std::printf("(unreachable)\n");
    std::printf("%-16s | %-14.1f | %-14.1f | %-8.1f | %.2e\n", "charlib-gcn",
                gcn_train_us, gcn_plan_us,
                gcn_train_us / std::max(1e-9, gcn_plan_us), gcn_parity);
  }

  // --- batched throughput -------------------------------------------------
  std::printf("\nBatched throughput — iv predictor, graphs/s through "
              "Predictor::predict:\n");
  std::printf("%-10s | %-12s | %s\n", "batch", "us/graph", "graphs/s");
  bench::rule('-', 60);
  numeric::Rng rng(5);
  const gnn::RelGatModel iv_model(iv_cfg, rng);
  gnn::Predictor iv_pred;
  iv_pred.compile(iv_model);
  std::ostringstream batch_rows;
  const std::size_t batch_sizes[] = {1, 8, 64};
  for (std::size_t bi = 0; bi < 3; ++bi) {
    const std::size_t bs = batch_sizes[bi];
    std::vector<gnn::Graph> gs;
    for (std::size_t i = 0; i < bs; ++i) gs.push_back(make_graph(nodes, 100 + i));
    const std::size_t iters = std::max<std::size_t>(1, reps / bs);
    double sink = 0.0;
    const double us_per_graph =
        best_round_us(iters, [&] { sink += iv_pred.predict(gs)[0]; }) /
        static_cast<double>(bs);
    if (sink == 1e300) std::printf("(unreachable)\n");
    std::printf("%-10zu | %-12.1f | %.0f\n", bs, us_per_graph,
                1e6 / us_per_graph);
    batch_rows << "    {\"batch\": " << bs << ", \"us_per_graph\": "
               << us_per_graph << ", \"graphs_per_s\": " << 1e6 / us_per_graph
               << "}" << (bi + 1 < 3 ? "," : "") << "\n";
  }

  // --- JSON ---------------------------------------------------------------
  std::ostringstream payload;
  payload << "  \"latency\": [\n";
  for (std::size_t i = 0; i < 2; ++i)
    payload << "    {\"model\": \"" << rows[i].model
            << "\", \"train_us\": " << rows[i].train_us
            << ", \"plan_us\": " << rows[i].plan_us
            << ", \"speedup\": " << rows[i].speedup
            << ", \"max_rel_err\": " << rows[i].parity << "},\n";
  payload << "    {\"model\": \"charlib-gcn\", \"train_us\": " << gcn_train_us
          << ", \"plan_us\": " << gcn_plan_us
          << ", \"speedup\": " << gcn_train_us / std::max(1e-9, gcn_plan_us)
          << ", \"max_rel_err\": " << gcn_parity << "}\n  ],\n"
          << "  \"throughput\": [\n" << batch_rows.str() << "  ],\n"
          << "  \"parity_ok\": " << (parity_ok ? "true" : "false");
  bench::write_bench_json("BENCH_inference.json", "inference", payload.str());
  std::printf("\nwrote BENCH_inference.json\n");

  // Self-check: valid JSON with the schema-tagged obs snapshot.
  std::ifstream f("BENCH_inference.json");
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string body = ss.str();
  if (!obs::json_valid(body) ||
      body.find("\"obs_schema_version\"") == std::string::npos) {
    std::fprintf(stderr, "BENCH_inference.json failed validation\n");
    return 1;
  }
  if (!parity_ok) {
    std::fprintf(stderr, "parity failure: plan deviates from training path\n");
    return 1;
  }
  return 0;
}
