// Example: the complete STCO iteration loop (paper Fig. 1) — an RL agent
// explores the (VDD, Vth, Cox) technology space of a benchmark, with every
// evaluation running cell-library characterization + static timing / power
// / area analysis, and the per-iteration runtime accounting of Table I.

#include <cstdio>

#include "src/exec/context.hpp"
#include "src/obs/obs.hpp"
#include "src/stco/loop.hpp"
#include "src/stco/report.hpp"
#include "src/stco/runtime_model.hpp"

int main() {
  using namespace stco;

  // Root span for the whole exploration; with STCO_TRACE=<path> set, the
  // run emits a chrome://tracing / Perfetto-loadable JSON trace on exit.
  obs::Span run_span("stco_exploration");

  StcoConfig cfg;
  cfg.benchmark = "s386";
  cfg.grid_n = 3;
  cfg.rl.episodes = 3;
  cfg.rl.steps_per_episode = 6;
  // The default cell set covers everything the benchmark generators emit;
  // the 2x2 NLDM axes keep each per-iteration library build to ~2 s.

  printf("benchmark %s: %zu gates, %zu flip-flops\n", cfg.benchmark.c_str(),
         flow::make_benchmark(cfg.benchmark).num_gates(),
         flow::make_benchmark(cfg.benchmark).num_flipflops());

  // Traditional path: every technology evaluation pays for SPICE
  // characterization of the library. The exec::Context spreads arc
  // characterizations and speculative candidate evaluations over worker
  // threads; pass exec::Context::serial() (the default) to run inline.
  exec::Context ctx(2);
  StcoEngine engine(cfg, SpiceBackend{}, ctx);
  printf("\nrunning RL exploration over a %zu^3 technology grid (%zu worker "
         "threads)...\n",
         cfg.grid_n, ctx.threads());
  const auto result = engine.optimize();

  printf("\nbest technology point found:\n");
  printf("  VDD = %.2f V, Vth = %.2f V, Cox = %.1f nF/cm^2, cost %.4f\n",
         result.best_point.vdd, result.best_point.vth, result.best_point.cox * 1e5,
         result.best_cost);
  const auto best_rep = engine.evaluate(result.best_point);
  printf("  fmax %.2f MHz, total power %.3e W, area %.4f mm^2\n", best_rep.fmax / 1e6,
         best_rep.total_power, best_rep.area * 1e6);

  printf("\nsearch statistics: %zu unique technology evaluations\n",
         result.unique_evaluations);
  printf("wall time split: library characterization %.1f s (%.0f%%), system "
         "evaluation %.1f s\n",
         engine.timing().library_seconds.load(),
         100.0 * engine.timing().library_seconds.load() /
             (engine.timing().library_seconds.load() +
              engine.timing().sta_seconds.load()),
         engine.timing().sta_seconds.load());
  printf("scheduler: %s\n", ctx.stats().summary().c_str());

  // Per-iteration runtime accounting as in Table I.
  const auto row = table1_row(cfg.benchmark);
  printf("\nTable I accounting for %s (paper-calibrated commercial costs):\n",
         cfg.benchmark.c_str());
  printf("  traditional %.0f s/iter, fast STCO %.0f s/iter -> %.1fx speedup\n",
         row.traditional, row.ours, row.speedup);
  printf("  over %zu evaluations that is %.1f h vs %.1f h of tooling time.\n",
         result.unique_evaluations,
         row.traditional * result.unique_evaluations / 3600.0,
         row.ours * result.unique_evaluations / 3600.0);

  // Archive the run as Markdown.
  RunReportInputs rpt;
  rpt.benchmark = cfg.benchmark;
  rpt.search = result;
  rpt.best_ppa = best_rep;
  rpt.fast_path = engine.fast_path();
  rpt.obs = engine.obs_snapshot();
  write_run_report_file("/tmp/stco_run_report.md", rpt);
  printf("\nrun report written to /tmp/stco_run_report.md\n");
  return 0;
}
