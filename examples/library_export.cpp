// Example: the EDA-facing surfaces of the library — characterize a cell
// library, export it as Liberty (.lib), dump a benchmark netlist as
// structural Verilog, inspect an inverter's small-signal response, and
// quantify process-variation spread with Monte Carlo.

#include <cstdio>

#include "src/compact/variation.hpp"
#include "src/flow/benchmarks.hpp"
#include "src/flow/liberty_writer.hpp"
#include "src/flow/netlist_io.hpp"
#include "src/spice/ac.hpp"

int main() {
  using namespace stco;
  const auto tech = compact::cnt_tech();

  // 1. Characterize a compact library and write it as Liberty.
  flow::LibraryBuildOptions opts;
  opts.cell_names = {"INV", "NAND2", "NOR2", "XOR2", "DFF"};
  opts.slew_axis = {10e-9, 40e-9};
  opts.load_axis = {20e-15, 100e-15};
  printf("characterizing %zu cells via SPICE...\n", opts.cell_names.size());
  const auto lib = flow::build_library_spice(tech, opts);
  flow::write_liberty_file("/tmp/fast_stco_cnt.lib", lib);
  printf("wrote /tmp/fast_stco_cnt.lib (%zu cells, DFF setup %.1f ns)\n",
         lib.cells.size(), lib.dff_setup * 1e9);

  // 2. Export a benchmark netlist as structural Verilog.
  const auto s298 = flow::make_benchmark("s298");
  flow::write_verilog_file("/tmp/s298.v", s298);
  printf("\nwrote /tmp/s298.v\n%s", flow::netlist_stats(s298).c_str());

  // 3. Small-signal response of a biased inverter.
  spice::Netlist nl;
  const auto vdd = nl.node("vdd"), in = nl.node("in"), out = nl.node("out");
  nl.add_vsource("VDD", vdd, spice::kGround, spice::Waveform::dc(tech.vdd));
  nl.add_vsource("VIN", in, spice::kGround, spice::Waveform::dc(0.5 * tech.vdd));
  nl.add_tft("MP", out, in, vdd, compact::make_pfet(tech, 16e-6, 2e-6));
  nl.add_tft("MN", out, in, spice::kGround, compact::make_nfet(tech, 8e-6, 2e-6));
  nl.add_capacitor("CL", out, spice::kGround, 100e-15);
  const auto ac = spice::ac_analysis(nl, "VIN", spice::log_frequencies(1e2, 1e8, 25));
  printf("\ninverter AC response (biased at VDD/2):\n");
  for (std::size_t k = 0; k < ac.frequency.size(); k += 6)
    printf("  f = %9.0f Hz  gain %6.2f dB  phase %6.1f deg\n", ac.frequency[k],
           ac.gain_db(k, out), ac.phase(k, out) * 57.2958);
  printf("  -3 dB bandwidth: %.0f kHz\n", spice::bandwidth_3db(ac, out) / 1e3);

  // 4. Monte Carlo process variation of the on-current.
  const auto nominal = compact::make_nfet(tech, 8e-6, 2e-6);
  const auto mc = compact::on_current_spread(nominal, {}, tech.vdd, tech.vdd, 1000);
  printf("\nNFET on-current under process variation (1000 samples):\n");
  printf("  mean %.3e A, sigma/mean %.1f%%, [p5, p95] = [%.3e, %.3e] A\n", mc.mean,
         100.0 * mc.stddev / mc.mean, mc.p05, mc.p95);
  return 0;
}
