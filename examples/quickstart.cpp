// Quickstart: simulate a thin-film transistor with the TCAD substrate, fit
// the unified compact model (paper Eq. 1) to its curves, and evaluate the
// fitted model at a few bias points.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/compact/extraction.hpp"
#include "src/compact/metrics.hpp"
#include "src/tcad/poisson.hpp"
#include "src/tcad/transport.hpp"

int main() {
  using namespace stco;

  // 1. Describe a device: an IGZO bottom-gate TFT.
  tcad::TftDevice dev;
  dev.semi = tcad::igzo_params();
  dev.length = 2e-6;
  dev.width = 20e-6;
  dev.t_ox = 100e-9;
  dev.t_ch = 40e-9;

  // 2. Solve the 2-D nonlinear Poisson problem at one bias and inspect the
  //    channel.
  const tcad::Bias bias{4.0, 1.0, 0.0};
  const auto mesh = tcad::build_mesh(dev, bias, 16, 5, 4);
  const auto sol = tcad::solve_poisson(dev, bias, mesh);
  printf("Poisson solve: converged=%d after %zu Newton iterations\n", sol.converged,
         sol.newton_iterations);
  const std::size_t mid_channel = mesh.index(mesh.nx() / 2, 3);
  printf("mid-channel potential %.3f V, electron density %.3e /m^3\n",
         sol.potential[mid_channel], sol.electron_density[mid_channel]);

  // 3. Sweep a transfer curve with the transport solver (the "TCAD truth").
  std::vector<double> vgs;
  for (double v = -1.0; v <= 6.0 + 1e-9; v += 0.5) vgs.push_back(v);
  const auto transfer = tcad::transfer_curve(dev, 2.0, vgs);
  printf("\ntransfer curve at VDS = 2 V:\n  %-8s %s\n", "Vg [V]", "Id [A]");
  for (std::size_t i = 0; i < transfer.size(); i += 2)
    printf("  %-8.1f %.4e\n", transfer[i].vg, transfer[i].id);

  // 4. Fit the unified compact model to those curves (parameter extraction).
  std::vector<compact::MeasuredPoint> meas;
  for (const auto& p : transfer) meas.push_back({p.vg, p.vd, p.id});
  std::vector<compact::MeasuredPoint> out_meas;
  for (const auto& p : tcad::output_curve(dev, 5.0, {0.5, 1, 2, 3, 4, 5, 6}))
    out_meas.push_back({p.vg, p.vd, p.id});

  compact::TftParams seed;
  seed.type = compact::TftType::kNType;
  seed.cox = tcad::oxide_capacitance(dev);
  seed.width = dev.width;
  seed.length = dev.length;
  seed.mu0 = dev.semi.mu0 * 0.5;  // deliberately rough starting point
  seed.vth = 1.0;
  seed.gamma = 0.3;
  const auto fit = compact::extract_parameters(meas, out_meas, seed);
  printf("\ncompact model extraction (Eq. 1: mu = mu0 |Vg - Vth|^gamma):\n");
  printf("  mu0   = %.3f cm^2/Vs\n  vth   = %.3f V\n  gamma = %.3f\n",
         fit.params.mu0 * 1e4, fit.params.vth, fit.params.gamma);
  printf("  on-state MAPE vs TCAD: %.2f%% (LM converged=%d in %zu iterations)\n",
         fit.on_mape, fit.converged, fit.lm_iterations);

  // 5. Use the fitted model like SPICE would.
  printf("\nfitted model spot checks:\n");
  for (double vg : {2.0, 4.0, 6.0})
    printf("  Id(vg=%.0f, vd=2) = %.4e A (TCAD %.4e A)\n", vg,
           compact::tft_current(fit.params, vg, 2.0, 0.0),
           tcad::drain_current(dev, {vg, 2.0, 0.0}));

  // 6. Device figures of merit from the TCAD transfer curve.
  const auto figures = compact::extract_figures(meas, dev.width, dev.length);
  printf("\ndevice figures of merit:\n");
  printf("  Vth (constant-current) = %.2f V, Vth (max-gm extrapolation) = %.2f V\n",
         figures.vth_cc, figures.vth_extrap);
  printf("  subthreshold swing = %.0f mV/dec, on/off = %.1e, gm_max = %.2e S\n",
         figures.swing * 1e3, figures.on_off, figures.gm_max);
  return 0;
}
