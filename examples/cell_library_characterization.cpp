// Example: two-stage cell characterization (paper section II.C).
//
// Stage 1 — transistor-level SPICE characterization of library cells across
// (VDD, Vth, Cox) corners produces the training labels.
// Stage 2 — the 3-layer GCN + per-metric MLP model learns them; unseen
// corners are then characterized by inference alone.

#include <cstdio>

#include "src/charlib/dataset.hpp"

int main() {
  using namespace stco;
  using namespace stco::charlib;

  // Stage 1: SPICE labels over a 2^3 corner grid, small cell subset.
  CornerRanges ranges;  // CNT technology: VDD 2.4-3.6, Vth 0.6-1.0, Cox sweep
  DatasetOptions opts;
  opts.cell_names = {"INV", "NAND2", "NOR2", "XOR2", "DFF"};
  opts.input_slews = {15e-9};
  opts.output_loads = {40e-15};
  printf("stage 1: SPICE-characterizing %zu cells over 8 corners...\n",
         opts.cell_names.size());
  const auto train_set = build_charlib_dataset(corner_grid(ranges, 2), opts);
  const auto test_set = build_charlib_dataset(corner_grid_offset(ranges, 2), opts);
  printf("  %zu training samples, %zu test samples (9 metrics)\n", train_set.size(),
         test_set.size());

  // Stage 2: train the GCN model.
  CellCharModelConfig mcfg;
  mcfg.train.epochs = 60;
  CellCharModel model(mcfg);
  printf("stage 2: training GCN+MLP model (%zu parameters)...\n",
         model.num_parameters());
  model.fit_normalization(train_set);
  model.train(train_set);

  // Report per-metric MAPE on the unseen corners (Table IV style).
  const auto mape = model.mape_by_metric(test_set);
  const auto counts = CellCharModel::count_by_metric(test_set);
  printf("\n%-18s %-10s %s\n", "metric", "MAPE", "#test samples");
  for (std::size_t m = 0; m < cells::kNumMetrics; ++m) {
    if (mape[m] < 0) continue;
    printf("%-18s %6.2f%%   %zu\n", cells::to_string(static_cast<cells::Metric>(m)),
           mape[m], counts[m]);
  }

  // Spot-check one prediction against a fresh SPICE run.
  compact::TechnologyPoint probe{tcad::SemiconductorKind::kCnt, 3.1, 0.72, 1.25e-4};
  cells::CharConfig ccfg;
  ccfg.tech = probe;
  ccfg.input_slew = 15e-9;
  ccfg.load_cap = 40e-15;
  const auto spice_ref = cells::characterize_cell(cells::find_cell("NAND2"), ccfg);
  PinContext ctx;
  for (const auto& pin : cells::find_cell("NAND2").inputs) {
    ctx.current_state[pin] = false;
    ctx.next_state[pin] = false;
  }
  ctx.toggling_pin = spice_ref.arcs[0].input_pin;
  for (const auto& [pin, v] : spice_ref.arcs[0].side_inputs) {
    ctx.current_state[pin] = v;
    ctx.next_state[pin] = v;
  }
  ctx.current_state[ctx.toggling_pin] = !spice_ref.arcs[0].input_rising;
  ctx.next_state[ctx.toggling_pin] = spice_ref.arcs[0].input_rising;
  ctx.input_slew = 15e-9;
  ctx.output_load = 40e-15;
  const auto g = encode_cell(cells::find_cell("NAND2"), probe, {}, ctx);
  printf("\nNAND2 delay at unseen corner (VDD=3.1, Vth=0.72): SPICE %.2f ns, GNN %.2f ns\n",
         spice_ref.arcs[0].delay * 1e9, model.predict(g, cells::Metric::kDelay) * 1e9);
  return 0;
}
