// Example: warm-starting the STCO loop from the persistent cost cache.
//
// With STCO_CACHE_DIR set (or StcoConfig::cache_dir), the engine persists
// its tech-point -> cost map and calibrated PPA weights as a checksummed
// artifact on shutdown and restores them on construction. Run this once
// cold, then again with the same cache directory: the second run restores
// every cost from disk and re-evaluates nothing. A corrupt or stale cache
// is detected by its CRC/fingerprint, counted, and silently rebuilt.
//
// Usage:
//   STCO_CACHE_DIR=/tmp/stco-cache ./warm_start
//   STCO_CACHE_DIR=/tmp/stco-cache ./warm_start --expect-warm
//
// --expect-warm exits nonzero unless the cache actually warmed the engine
// (used by the CI smoke job to prove the round trip works end to end).

#include <cstdio>
#include <cstring>

#include "src/obs/obs.hpp"
#include "src/stco/loop.hpp"

int main(int argc, char** argv) {
  using namespace stco;

  bool expect_warm = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--expect-warm") == 0) expect_warm = true;

  StcoConfig cfg;
  cfg.benchmark = "s298";
  cfg.grid_n = 3;
  cfg.rl.episodes = 2;
  cfg.rl.steps_per_episode = 5;
  // cfg.cache_dir left empty: the engine reads $STCO_CACHE_DIR.

  StcoEngine engine(cfg, SpiceBackend{});
  if (engine.cost_cache_path().empty()) {
    printf("persistence off: set STCO_CACHE_DIR to enable the cost cache\n");
    if (expect_warm) return 1;
  } else {
    printf("cost cache: %s (%zu entries restored)\n",
           engine.cost_cache_path().c_str(), engine.warm_cache_entries());
  }

  const auto result = engine.optimize();
  printf("best point: VDD %.2f V, Vth %.2f V, Cox %.1f nF/cm^2, cost %.4f\n",
         result.best_point.vdd, result.best_point.vth,
         result.best_point.cox * 1e5, result.best_cost);
  printf("library evaluations this run: %zu (warm cache skips them)\n",
         engine.timing().evaluations.load());

  const auto snap = engine.obs_snapshot();
  printf("persist: %llu writes, %llu reads, %llu corrupt artifacts detected, "
         "%llu warm hits\n",
         static_cast<unsigned long long>(snap.counter_or("persist.writes")),
         static_cast<unsigned long long>(snap.counter_or("persist.reads")),
         static_cast<unsigned long long>(snap.counter_or("persist.corrupt_artifacts")),
         static_cast<unsigned long long>(snap.counter_or("persist.cache.warm_hits")));

  if (expect_warm) {
    if (engine.warm_cache_entries() == 0) {
      printf("FAIL: --expect-warm but the cache restored nothing\n");
      return 1;
    }
    if (engine.timing().evaluations.load() != 0) {
      printf("FAIL: --expect-warm but %zu evaluations ran\n",
             engine.timing().evaluations.load());
      return 1;
    }
    printf("warm start verified: zero evaluations, all costs from disk\n");
  }
  // The destructor persists the (possibly grown) cache for the next run.
  return 0;
}
