// Example: live telemetry around a resumable dataset build + training run.
//
// Demonstrates the observability stack end to end: set STCO_TELEMETRY=<path>
// and every obs mutation (metrics, progress tasks, always-on span stats)
// streams to a JSONL file while the run is in flight. With --kill the build
// is killed mid-shard through the persist fault injector; rerunning without
// --kill resumes from the checkpoint and appends a second telemetry session
// to the same stream. `stco-perfdiff --validate <path>` then checks the
// combined stream (CI job telemetry-smoke drives exactly that sequence).
//
//   STCO_TELEMETRY=/tmp/t.jsonl ./telemetry_smoke ckpt_dir --kill
//   STCO_TELEMETRY=/tmp/t.jsonl ./telemetry_smoke ckpt_dir
//   stco-perfdiff --validate /tmp/t.jsonl

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/charlib/checkpoint.hpp"
#include "src/charlib/model.hpp"
#include "src/obs/obs.hpp"
#include "src/persist/fault.hpp"

int main(int argc, char** argv) {
  using namespace stco;

  std::string ckpt_dir = "telemetry_smoke_ckpt";
  bool kill = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--kill") == 0)
      kill = true;
    else
      ckpt_dir = argv[i];
  }

  charlib::CornerRanges ranges;
  const auto corners = charlib::corner_grid(ranges, 2);  // 8 corners
  charlib::DatasetOptions opts;
  opts.cell_names = {"INV"};
  opts.input_slews = {15e-9};
  opts.output_loads = {30e-15};

  if (kill) {
    // Run 1: die while writing the second shard (persist op 3), leaving a
    // valid shard-0 checkpoint and a telemetry stream that simply stops.
    printf("building charlib dataset (will be killed mid-shard)...\n");
    persist::FaultInjector injector(/*seed=*/5,
                                    persist::FaultKind::kCrashBeforeRename,
                                    /*at_op=*/3);
    persist::Storage faulty(persist::RetryPolicy{1, 0, false}, &injector);
    charlib::CheckpointOptions ckpt{ckpt_dir, /*shard_size=*/3, &faulty};
    try {
      charlib::build_charlib_dataset_resumable(corners, opts, ckpt);
      fprintf(stderr, "expected the injected crash to fire\n");
      return 1;
    } catch (const persist::CrashError&) {
      printf("killed mid-build; checkpoint left in %s\n", ckpt_dir.c_str());
    }
  } else {
    // Run 2 (or an uninterrupted run): finish the build from whatever the
    // checkpoint already holds, then train a small model so the
    // gnn.train.epochs progress task streams too.
    persist::Storage storage;
    charlib::CheckpointOptions ckpt{ckpt_dir, /*shard_size=*/3, &storage};
    const auto samples =
        charlib::build_charlib_dataset_resumable(corners, opts, ckpt);
    printf("dataset ready: %zu samples over %zu corners\n", samples.size(),
           corners.size());

    charlib::CellCharModelConfig mcfg;
    mcfg.train.epochs = 5;
    charlib::CellCharModel model(mcfg);
    model.fit_normalization(samples);
    model.train(samples);
    printf("trained %zu-parameter model for %zu epochs\n",
           model.num_parameters(), mcfg.train.epochs);
  }

  // Progress / attribution summary straight from the registry.
  for (const auto& [name, p] : obs::progress_snapshot())
    printf("progress %-28s %llu/%llu (eta %.1fs)\n", name.c_str(),
           static_cast<unsigned long long>(p.done),
           static_cast<unsigned long long>(p.total), p.eta_seconds);

  // If telemetry is active, show what reached disk so far. The "final"
  // record lands when the process exits (the env session's destructor), so
  // validate the file with `stco-perfdiff --validate` afterwards.
  if (const char* path = std::getenv("STCO_TELEMETRY"); path && *path) {
    const obs::TelemetryLog log = obs::read_telemetry_file(path);
    printf("telemetry: %zu record(s) streamed to %s so far\n",
           log.records.size(), path);
  }
  return 0;
}
