// Example: train the GNN surrogate TCAD models (paper section II.A) on a
// small device population and compare their predictions against the physics
// solvers, including per-device wall-clock speedup.

#include <chrono>
#include <cstdio>

#include "src/surrogate/surrogate.hpp"
#include "src/tcad/drift_diffusion.hpp"

int main() {
  using namespace stco;
  using namespace stco::surrogate;
  using clock = std::chrono::steady_clock;

  // 1. Generate a training population with the TCAD substrate.
  printf("generating 120 random devices (CNT / IGZO / LTPS)...\n");
  PopulationOptions opts;
  // Seed-addressed generation: sample i is a pure function of (seed, i), so
  // the same pool comes back for any thread count of the passed context.
  const auto pool = generate_population(120, /*seed=*/11, opts);
  std::span<const DeviceSample> train(pool.data(), 100);
  std::span<const DeviceSample> held(pool.data() + 100, 20);

  // 2. Train both surrogates (reduced widths for a quick demo).
  SurrogateConfig cfg;
  cfg.poisson_hidden = 16;
  cfg.iv_hidden = 16;
  cfg.poisson_train.epochs = 25;
  cfg.iv_train.epochs = 50;
  TcadSurrogate sur(cfg);
  printf("training Poisson emulator (%zu params) and IV predictor (%zu params)...\n",
         sur.poisson_model().num_parameters(), sur.iv_model().num_parameters());
  sur.train_poisson(train);
  sur.train_iv(train);

  // 3. Accuracy on held-out devices.
  printf("\nheld-out accuracy: Poisson MSE %.3e (norm. potential), IV MSE %.3e "
         "(norm. log current), IV R2 %.4f\n",
         sur.poisson_mse(held), sur.iv_mse(held), sur.iv_r2(held));

  printf("\nper-device drain current, TCAD vs surrogate:\n  %-22s %-13s %-13s\n",
         "device", "I_tcad [A]", "I_gnn [A]");
  for (std::size_t i = 0; i < 6; ++i) {
    const auto& s = held[i];
    printf("  %-4s L=%.1fum Vg=%+.1fV   %-13.3e %-13.3e\n",
           tcad::to_string(s.device.semi.kind).c_str(), s.device.length * 1e6,
           s.bias.vg, s.drain_current, sur.predict_current(s.iv_graph));
  }

  // 4. Runtime asymmetry: reference-fidelity physics (full 2-D
  //    drift-diffusion, the stand-in for commercial TCAD) vs one GNN pass.
  const auto fresh = generate_population(1, /*seed=*/123, opts);
  const auto t0 = clock::now();
  const auto dd = tcad::solve_drift_diffusion(fresh[0].device, fresh[0].bias);
  const double tcad_s = std::chrono::duration<double>(clock::now() - t0).count();
  const auto t1 = clock::now();
  (void)sur.predict_potential(fresh[0].poisson_graph);
  const double id_gnn = sur.predict_current(fresh[0].iv_graph);
  const double gnn_s = std::chrono::duration<double>(clock::now() - t1).count();
  printf("\nruntime per device: drift-diffusion solve %.0f ms (Id %.3e A), "
         "GNN inference %.2f ms (Id %.3e A) -> %.0fx\n",
         tcad_s * 1e3, std::fabs(dd.drain_current), gnn_s * 1e3, id_gnn,
         tcad_s / gnn_s);
  printf("(paper: 142.07 s commercial TCAD vs 1.38 s GNN, >100x)\n");
  return 0;
}
