file(REMOVE_RECURSE
  "CMakeFiles/bench_speedup_components.dir/bench_speedup_components.cpp.o"
  "CMakeFiles/bench_speedup_components.dir/bench_speedup_components.cpp.o.d"
  "bench_speedup_components"
  "bench_speedup_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speedup_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
