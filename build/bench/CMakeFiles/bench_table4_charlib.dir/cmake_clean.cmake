file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_charlib.dir/bench_table4_charlib.cpp.o"
  "CMakeFiles/bench_table4_charlib.dir/bench_table4_charlib.cpp.o.d"
  "bench_table4_charlib"
  "bench_table4_charlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_charlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
