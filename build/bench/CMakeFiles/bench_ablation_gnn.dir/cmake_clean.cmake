file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gnn.dir/bench_ablation_gnn.cpp.o"
  "CMakeFiles/bench_ablation_gnn.dir/bench_ablation_gnn.cpp.o.d"
  "bench_ablation_gnn"
  "bench_ablation_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
