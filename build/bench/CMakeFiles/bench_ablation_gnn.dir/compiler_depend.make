# Empty compiler generated dependencies file for bench_ablation_gnn.
# This may be replaced when dependencies are built.
