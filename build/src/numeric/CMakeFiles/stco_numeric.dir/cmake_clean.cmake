file(REMOVE_RECURSE
  "CMakeFiles/stco_numeric.dir/lm.cpp.o"
  "CMakeFiles/stco_numeric.dir/lm.cpp.o.d"
  "CMakeFiles/stco_numeric.dir/matrix.cpp.o"
  "CMakeFiles/stco_numeric.dir/matrix.cpp.o.d"
  "CMakeFiles/stco_numeric.dir/solve.cpp.o"
  "CMakeFiles/stco_numeric.dir/solve.cpp.o.d"
  "CMakeFiles/stco_numeric.dir/sparse.cpp.o"
  "CMakeFiles/stco_numeric.dir/sparse.cpp.o.d"
  "CMakeFiles/stco_numeric.dir/stats.cpp.o"
  "CMakeFiles/stco_numeric.dir/stats.cpp.o.d"
  "libstco_numeric.a"
  "libstco_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stco_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
