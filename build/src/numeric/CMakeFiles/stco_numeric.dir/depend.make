# Empty dependencies file for stco_numeric.
# This may be replaced when dependencies are built.
