file(REMOVE_RECURSE
  "libstco_numeric.a"
)
