file(REMOVE_RECURSE
  "libstco_compact.a"
)
