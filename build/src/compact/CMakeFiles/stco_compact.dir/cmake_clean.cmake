file(REMOVE_RECURSE
  "CMakeFiles/stco_compact.dir/extraction.cpp.o"
  "CMakeFiles/stco_compact.dir/extraction.cpp.o.d"
  "CMakeFiles/stco_compact.dir/metrics.cpp.o"
  "CMakeFiles/stco_compact.dir/metrics.cpp.o.d"
  "CMakeFiles/stco_compact.dir/reference_model.cpp.o"
  "CMakeFiles/stco_compact.dir/reference_model.cpp.o.d"
  "CMakeFiles/stco_compact.dir/technology.cpp.o"
  "CMakeFiles/stco_compact.dir/technology.cpp.o.d"
  "CMakeFiles/stco_compact.dir/tft_model.cpp.o"
  "CMakeFiles/stco_compact.dir/tft_model.cpp.o.d"
  "CMakeFiles/stco_compact.dir/variation.cpp.o"
  "CMakeFiles/stco_compact.dir/variation.cpp.o.d"
  "libstco_compact.a"
  "libstco_compact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stco_compact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
