
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compact/extraction.cpp" "src/compact/CMakeFiles/stco_compact.dir/extraction.cpp.o" "gcc" "src/compact/CMakeFiles/stco_compact.dir/extraction.cpp.o.d"
  "/root/repo/src/compact/metrics.cpp" "src/compact/CMakeFiles/stco_compact.dir/metrics.cpp.o" "gcc" "src/compact/CMakeFiles/stco_compact.dir/metrics.cpp.o.d"
  "/root/repo/src/compact/reference_model.cpp" "src/compact/CMakeFiles/stco_compact.dir/reference_model.cpp.o" "gcc" "src/compact/CMakeFiles/stco_compact.dir/reference_model.cpp.o.d"
  "/root/repo/src/compact/technology.cpp" "src/compact/CMakeFiles/stco_compact.dir/technology.cpp.o" "gcc" "src/compact/CMakeFiles/stco_compact.dir/technology.cpp.o.d"
  "/root/repo/src/compact/tft_model.cpp" "src/compact/CMakeFiles/stco_compact.dir/tft_model.cpp.o" "gcc" "src/compact/CMakeFiles/stco_compact.dir/tft_model.cpp.o.d"
  "/root/repo/src/compact/variation.cpp" "src/compact/CMakeFiles/stco_compact.dir/variation.cpp.o" "gcc" "src/compact/CMakeFiles/stco_compact.dir/variation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/stco_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/tcad/CMakeFiles/stco_tcad.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/stco_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
