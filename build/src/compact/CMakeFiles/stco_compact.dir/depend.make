# Empty dependencies file for stco_compact.
# This may be replaced when dependencies are built.
