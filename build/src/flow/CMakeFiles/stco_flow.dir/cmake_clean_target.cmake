file(REMOVE_RECURSE
  "libstco_flow.a"
)
