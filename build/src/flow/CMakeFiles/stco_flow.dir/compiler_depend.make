# Empty compiler generated dependencies file for stco_flow.
# This may be replaced when dependencies are built.
