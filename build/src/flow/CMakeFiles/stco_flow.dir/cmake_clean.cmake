file(REMOVE_RECURSE
  "CMakeFiles/stco_flow.dir/bench_format.cpp.o"
  "CMakeFiles/stco_flow.dir/bench_format.cpp.o.d"
  "CMakeFiles/stco_flow.dir/benchmarks.cpp.o"
  "CMakeFiles/stco_flow.dir/benchmarks.cpp.o.d"
  "CMakeFiles/stco_flow.dir/liberty.cpp.o"
  "CMakeFiles/stco_flow.dir/liberty.cpp.o.d"
  "CMakeFiles/stco_flow.dir/liberty_reader.cpp.o"
  "CMakeFiles/stco_flow.dir/liberty_reader.cpp.o.d"
  "CMakeFiles/stco_flow.dir/liberty_writer.cpp.o"
  "CMakeFiles/stco_flow.dir/liberty_writer.cpp.o.d"
  "CMakeFiles/stco_flow.dir/logic_sim.cpp.o"
  "CMakeFiles/stco_flow.dir/logic_sim.cpp.o.d"
  "CMakeFiles/stco_flow.dir/netlist.cpp.o"
  "CMakeFiles/stco_flow.dir/netlist.cpp.o.d"
  "CMakeFiles/stco_flow.dir/netlist_io.cpp.o"
  "CMakeFiles/stco_flow.dir/netlist_io.cpp.o.d"
  "CMakeFiles/stco_flow.dir/optimize.cpp.o"
  "CMakeFiles/stco_flow.dir/optimize.cpp.o.d"
  "CMakeFiles/stco_flow.dir/sta.cpp.o"
  "CMakeFiles/stco_flow.dir/sta.cpp.o.d"
  "libstco_flow.a"
  "libstco_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stco_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
