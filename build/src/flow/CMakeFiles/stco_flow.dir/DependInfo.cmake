
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/bench_format.cpp" "src/flow/CMakeFiles/stco_flow.dir/bench_format.cpp.o" "gcc" "src/flow/CMakeFiles/stco_flow.dir/bench_format.cpp.o.d"
  "/root/repo/src/flow/benchmarks.cpp" "src/flow/CMakeFiles/stco_flow.dir/benchmarks.cpp.o" "gcc" "src/flow/CMakeFiles/stco_flow.dir/benchmarks.cpp.o.d"
  "/root/repo/src/flow/liberty.cpp" "src/flow/CMakeFiles/stco_flow.dir/liberty.cpp.o" "gcc" "src/flow/CMakeFiles/stco_flow.dir/liberty.cpp.o.d"
  "/root/repo/src/flow/liberty_reader.cpp" "src/flow/CMakeFiles/stco_flow.dir/liberty_reader.cpp.o" "gcc" "src/flow/CMakeFiles/stco_flow.dir/liberty_reader.cpp.o.d"
  "/root/repo/src/flow/liberty_writer.cpp" "src/flow/CMakeFiles/stco_flow.dir/liberty_writer.cpp.o" "gcc" "src/flow/CMakeFiles/stco_flow.dir/liberty_writer.cpp.o.d"
  "/root/repo/src/flow/logic_sim.cpp" "src/flow/CMakeFiles/stco_flow.dir/logic_sim.cpp.o" "gcc" "src/flow/CMakeFiles/stco_flow.dir/logic_sim.cpp.o.d"
  "/root/repo/src/flow/netlist.cpp" "src/flow/CMakeFiles/stco_flow.dir/netlist.cpp.o" "gcc" "src/flow/CMakeFiles/stco_flow.dir/netlist.cpp.o.d"
  "/root/repo/src/flow/netlist_io.cpp" "src/flow/CMakeFiles/stco_flow.dir/netlist_io.cpp.o" "gcc" "src/flow/CMakeFiles/stco_flow.dir/netlist_io.cpp.o.d"
  "/root/repo/src/flow/optimize.cpp" "src/flow/CMakeFiles/stco_flow.dir/optimize.cpp.o" "gcc" "src/flow/CMakeFiles/stco_flow.dir/optimize.cpp.o.d"
  "/root/repo/src/flow/sta.cpp" "src/flow/CMakeFiles/stco_flow.dir/sta.cpp.o" "gcc" "src/flow/CMakeFiles/stco_flow.dir/sta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cells/CMakeFiles/stco_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/charlib/CMakeFiles/stco_charlib.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/stco_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/compact/CMakeFiles/stco_compact.dir/DependInfo.cmake"
  "/root/repo/build/src/tcad/CMakeFiles/stco_tcad.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/stco_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/stco_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stco_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/stco_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
