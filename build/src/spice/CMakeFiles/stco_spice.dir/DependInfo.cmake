
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/ac.cpp" "src/spice/CMakeFiles/stco_spice.dir/ac.cpp.o" "gcc" "src/spice/CMakeFiles/stco_spice.dir/ac.cpp.o.d"
  "/root/repo/src/spice/engine.cpp" "src/spice/CMakeFiles/stco_spice.dir/engine.cpp.o" "gcc" "src/spice/CMakeFiles/stco_spice.dir/engine.cpp.o.d"
  "/root/repo/src/spice/export.cpp" "src/spice/CMakeFiles/stco_spice.dir/export.cpp.o" "gcc" "src/spice/CMakeFiles/stco_spice.dir/export.cpp.o.d"
  "/root/repo/src/spice/measure.cpp" "src/spice/CMakeFiles/stco_spice.dir/measure.cpp.o" "gcc" "src/spice/CMakeFiles/stco_spice.dir/measure.cpp.o.d"
  "/root/repo/src/spice/netlist.cpp" "src/spice/CMakeFiles/stco_spice.dir/netlist.cpp.o" "gcc" "src/spice/CMakeFiles/stco_spice.dir/netlist.cpp.o.d"
  "/root/repo/src/spice/parser.cpp" "src/spice/CMakeFiles/stco_spice.dir/parser.cpp.o" "gcc" "src/spice/CMakeFiles/stco_spice.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/stco_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/compact/CMakeFiles/stco_compact.dir/DependInfo.cmake"
  "/root/repo/build/src/tcad/CMakeFiles/stco_tcad.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/stco_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
