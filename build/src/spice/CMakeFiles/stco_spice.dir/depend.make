# Empty dependencies file for stco_spice.
# This may be replaced when dependencies are built.
