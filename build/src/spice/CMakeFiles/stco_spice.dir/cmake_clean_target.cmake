file(REMOVE_RECURSE
  "libstco_spice.a"
)
