file(REMOVE_RECURSE
  "CMakeFiles/stco_spice.dir/ac.cpp.o"
  "CMakeFiles/stco_spice.dir/ac.cpp.o.d"
  "CMakeFiles/stco_spice.dir/engine.cpp.o"
  "CMakeFiles/stco_spice.dir/engine.cpp.o.d"
  "CMakeFiles/stco_spice.dir/export.cpp.o"
  "CMakeFiles/stco_spice.dir/export.cpp.o.d"
  "CMakeFiles/stco_spice.dir/measure.cpp.o"
  "CMakeFiles/stco_spice.dir/measure.cpp.o.d"
  "CMakeFiles/stco_spice.dir/netlist.cpp.o"
  "CMakeFiles/stco_spice.dir/netlist.cpp.o.d"
  "CMakeFiles/stco_spice.dir/parser.cpp.o"
  "CMakeFiles/stco_spice.dir/parser.cpp.o.d"
  "libstco_spice.a"
  "libstco_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stco_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
