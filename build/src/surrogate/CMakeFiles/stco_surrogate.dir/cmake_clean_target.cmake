file(REMOVE_RECURSE
  "libstco_surrogate.a"
)
