file(REMOVE_RECURSE
  "CMakeFiles/stco_surrogate.dir/dataset.cpp.o"
  "CMakeFiles/stco_surrogate.dir/dataset.cpp.o.d"
  "CMakeFiles/stco_surrogate.dir/encoding.cpp.o"
  "CMakeFiles/stco_surrogate.dir/encoding.cpp.o.d"
  "CMakeFiles/stco_surrogate.dir/surrogate.cpp.o"
  "CMakeFiles/stco_surrogate.dir/surrogate.cpp.o.d"
  "libstco_surrogate.a"
  "libstco_surrogate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stco_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
