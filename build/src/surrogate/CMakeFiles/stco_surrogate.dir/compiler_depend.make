# Empty compiler generated dependencies file for stco_surrogate.
# This may be replaced when dependencies are built.
