
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/surrogate/dataset.cpp" "src/surrogate/CMakeFiles/stco_surrogate.dir/dataset.cpp.o" "gcc" "src/surrogate/CMakeFiles/stco_surrogate.dir/dataset.cpp.o.d"
  "/root/repo/src/surrogate/encoding.cpp" "src/surrogate/CMakeFiles/stco_surrogate.dir/encoding.cpp.o" "gcc" "src/surrogate/CMakeFiles/stco_surrogate.dir/encoding.cpp.o.d"
  "/root/repo/src/surrogate/surrogate.cpp" "src/surrogate/CMakeFiles/stco_surrogate.dir/surrogate.cpp.o" "gcc" "src/surrogate/CMakeFiles/stco_surrogate.dir/surrogate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gnn/CMakeFiles/stco_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/tcad/CMakeFiles/stco_tcad.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/stco_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stco_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/stco_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
