file(REMOVE_RECURSE
  "libstco_tensor.a"
)
