file(REMOVE_RECURSE
  "CMakeFiles/stco_tensor.dir/ops.cpp.o"
  "CMakeFiles/stco_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/stco_tensor.dir/optim.cpp.o"
  "CMakeFiles/stco_tensor.dir/optim.cpp.o.d"
  "CMakeFiles/stco_tensor.dir/serialize.cpp.o"
  "CMakeFiles/stco_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/stco_tensor.dir/tensor.cpp.o"
  "CMakeFiles/stco_tensor.dir/tensor.cpp.o.d"
  "libstco_tensor.a"
  "libstco_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stco_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
