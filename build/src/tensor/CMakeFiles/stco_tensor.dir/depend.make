# Empty dependencies file for stco_tensor.
# This may be replaced when dependencies are built.
