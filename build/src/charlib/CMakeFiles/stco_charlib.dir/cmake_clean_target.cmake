file(REMOVE_RECURSE
  "libstco_charlib.a"
)
