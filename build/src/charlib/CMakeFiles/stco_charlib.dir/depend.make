# Empty dependencies file for stco_charlib.
# This may be replaced when dependencies are built.
