file(REMOVE_RECURSE
  "CMakeFiles/stco_charlib.dir/dataset.cpp.o"
  "CMakeFiles/stco_charlib.dir/dataset.cpp.o.d"
  "CMakeFiles/stco_charlib.dir/encoder.cpp.o"
  "CMakeFiles/stco_charlib.dir/encoder.cpp.o.d"
  "CMakeFiles/stco_charlib.dir/model.cpp.o"
  "CMakeFiles/stco_charlib.dir/model.cpp.o.d"
  "libstco_charlib.a"
  "libstco_charlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stco_charlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
