file(REMOVE_RECURSE
  "libstco_gnn.a"
)
