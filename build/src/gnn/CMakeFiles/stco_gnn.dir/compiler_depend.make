# Empty compiler generated dependencies file for stco_gnn.
# This may be replaced when dependencies are built.
