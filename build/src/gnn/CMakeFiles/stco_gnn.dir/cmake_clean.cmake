file(REMOVE_RECURSE
  "CMakeFiles/stco_gnn.dir/batch.cpp.o"
  "CMakeFiles/stco_gnn.dir/batch.cpp.o.d"
  "CMakeFiles/stco_gnn.dir/layers.cpp.o"
  "CMakeFiles/stco_gnn.dir/layers.cpp.o.d"
  "CMakeFiles/stco_gnn.dir/models.cpp.o"
  "CMakeFiles/stco_gnn.dir/models.cpp.o.d"
  "CMakeFiles/stco_gnn.dir/trainer.cpp.o"
  "CMakeFiles/stco_gnn.dir/trainer.cpp.o.d"
  "libstco_gnn.a"
  "libstco_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stco_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
