
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnn/batch.cpp" "src/gnn/CMakeFiles/stco_gnn.dir/batch.cpp.o" "gcc" "src/gnn/CMakeFiles/stco_gnn.dir/batch.cpp.o.d"
  "/root/repo/src/gnn/layers.cpp" "src/gnn/CMakeFiles/stco_gnn.dir/layers.cpp.o" "gcc" "src/gnn/CMakeFiles/stco_gnn.dir/layers.cpp.o.d"
  "/root/repo/src/gnn/models.cpp" "src/gnn/CMakeFiles/stco_gnn.dir/models.cpp.o" "gcc" "src/gnn/CMakeFiles/stco_gnn.dir/models.cpp.o.d"
  "/root/repo/src/gnn/trainer.cpp" "src/gnn/CMakeFiles/stco_gnn.dir/trainer.cpp.o" "gcc" "src/gnn/CMakeFiles/stco_gnn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/stco_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/stco_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
