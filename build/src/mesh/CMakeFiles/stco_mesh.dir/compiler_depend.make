# Empty compiler generated dependencies file for stco_mesh.
# This may be replaced when dependencies are built.
