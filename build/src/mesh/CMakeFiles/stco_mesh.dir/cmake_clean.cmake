file(REMOVE_RECURSE
  "CMakeFiles/stco_mesh.dir/mesh.cpp.o"
  "CMakeFiles/stco_mesh.dir/mesh.cpp.o.d"
  "libstco_mesh.a"
  "libstco_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stco_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
