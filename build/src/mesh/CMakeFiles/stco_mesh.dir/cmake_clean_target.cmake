file(REMOVE_RECURSE
  "libstco_mesh.a"
)
