
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcad/device.cpp" "src/tcad/CMakeFiles/stco_tcad.dir/device.cpp.o" "gcc" "src/tcad/CMakeFiles/stco_tcad.dir/device.cpp.o.d"
  "/root/repo/src/tcad/drift_diffusion.cpp" "src/tcad/CMakeFiles/stco_tcad.dir/drift_diffusion.cpp.o" "gcc" "src/tcad/CMakeFiles/stco_tcad.dir/drift_diffusion.cpp.o.d"
  "/root/repo/src/tcad/materials.cpp" "src/tcad/CMakeFiles/stco_tcad.dir/materials.cpp.o" "gcc" "src/tcad/CMakeFiles/stco_tcad.dir/materials.cpp.o.d"
  "/root/repo/src/tcad/poisson.cpp" "src/tcad/CMakeFiles/stco_tcad.dir/poisson.cpp.o" "gcc" "src/tcad/CMakeFiles/stco_tcad.dir/poisson.cpp.o.d"
  "/root/repo/src/tcad/transport.cpp" "src/tcad/CMakeFiles/stco_tcad.dir/transport.cpp.o" "gcc" "src/tcad/CMakeFiles/stco_tcad.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/stco_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/stco_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
