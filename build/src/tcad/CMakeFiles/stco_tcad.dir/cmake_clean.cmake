file(REMOVE_RECURSE
  "CMakeFiles/stco_tcad.dir/device.cpp.o"
  "CMakeFiles/stco_tcad.dir/device.cpp.o.d"
  "CMakeFiles/stco_tcad.dir/drift_diffusion.cpp.o"
  "CMakeFiles/stco_tcad.dir/drift_diffusion.cpp.o.d"
  "CMakeFiles/stco_tcad.dir/materials.cpp.o"
  "CMakeFiles/stco_tcad.dir/materials.cpp.o.d"
  "CMakeFiles/stco_tcad.dir/poisson.cpp.o"
  "CMakeFiles/stco_tcad.dir/poisson.cpp.o.d"
  "CMakeFiles/stco_tcad.dir/transport.cpp.o"
  "CMakeFiles/stco_tcad.dir/transport.cpp.o.d"
  "libstco_tcad.a"
  "libstco_tcad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stco_tcad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
