file(REMOVE_RECURSE
  "libstco_tcad.a"
)
