# Empty dependencies file for stco_tcad.
# This may be replaced when dependencies are built.
