# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("numeric")
subdirs("tensor")
subdirs("mesh")
subdirs("tcad")
subdirs("gnn")
subdirs("surrogate")
subdirs("compact")
subdirs("spice")
subdirs("cells")
subdirs("charlib")
subdirs("flow")
subdirs("stco")
