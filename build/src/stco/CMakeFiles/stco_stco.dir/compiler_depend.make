# Empty compiler generated dependencies file for stco_stco.
# This may be replaced when dependencies are built.
