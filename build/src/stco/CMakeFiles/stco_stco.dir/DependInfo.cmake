
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stco/loop.cpp" "src/stco/CMakeFiles/stco_stco.dir/loop.cpp.o" "gcc" "src/stco/CMakeFiles/stco_stco.dir/loop.cpp.o.d"
  "/root/repo/src/stco/pareto.cpp" "src/stco/CMakeFiles/stco_stco.dir/pareto.cpp.o" "gcc" "src/stco/CMakeFiles/stco_stco.dir/pareto.cpp.o.d"
  "/root/repo/src/stco/report.cpp" "src/stco/CMakeFiles/stco_stco.dir/report.cpp.o" "gcc" "src/stco/CMakeFiles/stco_stco.dir/report.cpp.o.d"
  "/root/repo/src/stco/rl.cpp" "src/stco/CMakeFiles/stco_stco.dir/rl.cpp.o" "gcc" "src/stco/CMakeFiles/stco_stco.dir/rl.cpp.o.d"
  "/root/repo/src/stco/runtime_model.cpp" "src/stco/CMakeFiles/stco_stco.dir/runtime_model.cpp.o" "gcc" "src/stco/CMakeFiles/stco_stco.dir/runtime_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/stco_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/charlib/CMakeFiles/stco_charlib.dir/DependInfo.cmake"
  "/root/repo/build/src/surrogate/CMakeFiles/stco_surrogate.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/stco_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/stco_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/compact/CMakeFiles/stco_compact.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/stco_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stco_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/tcad/CMakeFiles/stco_tcad.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/stco_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/stco_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
