file(REMOVE_RECURSE
  "CMakeFiles/stco_stco.dir/loop.cpp.o"
  "CMakeFiles/stco_stco.dir/loop.cpp.o.d"
  "CMakeFiles/stco_stco.dir/pareto.cpp.o"
  "CMakeFiles/stco_stco.dir/pareto.cpp.o.d"
  "CMakeFiles/stco_stco.dir/report.cpp.o"
  "CMakeFiles/stco_stco.dir/report.cpp.o.d"
  "CMakeFiles/stco_stco.dir/rl.cpp.o"
  "CMakeFiles/stco_stco.dir/rl.cpp.o.d"
  "CMakeFiles/stco_stco.dir/runtime_model.cpp.o"
  "CMakeFiles/stco_stco.dir/runtime_model.cpp.o.d"
  "libstco_stco.a"
  "libstco_stco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stco_stco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
