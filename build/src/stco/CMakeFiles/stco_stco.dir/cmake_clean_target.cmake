file(REMOVE_RECURSE
  "libstco_stco.a"
)
