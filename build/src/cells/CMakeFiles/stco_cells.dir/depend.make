# Empty dependencies file for stco_cells.
# This may be replaced when dependencies are built.
