file(REMOVE_RECURSE
  "libstco_cells.a"
)
