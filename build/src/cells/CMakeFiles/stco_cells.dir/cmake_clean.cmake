file(REMOVE_RECURSE
  "CMakeFiles/stco_cells.dir/builder.cpp.o"
  "CMakeFiles/stco_cells.dir/builder.cpp.o.d"
  "CMakeFiles/stco_cells.dir/celldef.cpp.o"
  "CMakeFiles/stco_cells.dir/celldef.cpp.o.d"
  "CMakeFiles/stco_cells.dir/characterize.cpp.o"
  "CMakeFiles/stco_cells.dir/characterize.cpp.o.d"
  "CMakeFiles/stco_cells.dir/library.cpp.o"
  "CMakeFiles/stco_cells.dir/library.cpp.o.d"
  "libstco_cells.a"
  "libstco_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stco_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
