
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cells/builder.cpp" "src/cells/CMakeFiles/stco_cells.dir/builder.cpp.o" "gcc" "src/cells/CMakeFiles/stco_cells.dir/builder.cpp.o.d"
  "/root/repo/src/cells/celldef.cpp" "src/cells/CMakeFiles/stco_cells.dir/celldef.cpp.o" "gcc" "src/cells/CMakeFiles/stco_cells.dir/celldef.cpp.o.d"
  "/root/repo/src/cells/characterize.cpp" "src/cells/CMakeFiles/stco_cells.dir/characterize.cpp.o" "gcc" "src/cells/CMakeFiles/stco_cells.dir/characterize.cpp.o.d"
  "/root/repo/src/cells/library.cpp" "src/cells/CMakeFiles/stco_cells.dir/library.cpp.o" "gcc" "src/cells/CMakeFiles/stco_cells.dir/library.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/stco_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/compact/CMakeFiles/stco_compact.dir/DependInfo.cmake"
  "/root/repo/build/src/tcad/CMakeFiles/stco_tcad.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/stco_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/stco_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
