
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tensor/gradcheck_test.cpp" "tests/CMakeFiles/test_tensor.dir/tensor/gradcheck_test.cpp.o" "gcc" "tests/CMakeFiles/test_tensor.dir/tensor/gradcheck_test.cpp.o.d"
  "/root/repo/tests/tensor/ops_test.cpp" "tests/CMakeFiles/test_tensor.dir/tensor/ops_test.cpp.o" "gcc" "tests/CMakeFiles/test_tensor.dir/tensor/ops_test.cpp.o.d"
  "/root/repo/tests/tensor/optim_test.cpp" "tests/CMakeFiles/test_tensor.dir/tensor/optim_test.cpp.o" "gcc" "tests/CMakeFiles/test_tensor.dir/tensor/optim_test.cpp.o.d"
  "/root/repo/tests/tensor/serialize_test.cpp" "tests/CMakeFiles/test_tensor.dir/tensor/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/test_tensor.dir/tensor/serialize_test.cpp.o.d"
  "/root/repo/tests/tensor/tensor_test.cpp" "tests/CMakeFiles/test_tensor.dir/tensor/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/test_tensor.dir/tensor/tensor_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/stco_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stco_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/stco_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/tcad/CMakeFiles/stco_tcad.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/stco_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/surrogate/CMakeFiles/stco_surrogate.dir/DependInfo.cmake"
  "/root/repo/build/src/compact/CMakeFiles/stco_compact.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/stco_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/stco_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/charlib/CMakeFiles/stco_charlib.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/stco_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/stco/CMakeFiles/stco_stco.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
