file(REMOVE_RECURSE
  "CMakeFiles/test_gnn.dir/gnn/batch_test.cpp.o"
  "CMakeFiles/test_gnn.dir/gnn/batch_test.cpp.o.d"
  "CMakeFiles/test_gnn.dir/gnn/layers_test.cpp.o"
  "CMakeFiles/test_gnn.dir/gnn/layers_test.cpp.o.d"
  "CMakeFiles/test_gnn.dir/gnn/models_test.cpp.o"
  "CMakeFiles/test_gnn.dir/gnn/models_test.cpp.o.d"
  "CMakeFiles/test_gnn.dir/gnn/property_test.cpp.o"
  "CMakeFiles/test_gnn.dir/gnn/property_test.cpp.o.d"
  "CMakeFiles/test_gnn.dir/gnn/trainer_test.cpp.o"
  "CMakeFiles/test_gnn.dir/gnn/trainer_test.cpp.o.d"
  "test_gnn"
  "test_gnn.pdb"
  "test_gnn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
