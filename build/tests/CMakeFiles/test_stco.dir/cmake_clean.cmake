file(REMOVE_RECURSE
  "CMakeFiles/test_stco.dir/stco/loop_test.cpp.o"
  "CMakeFiles/test_stco.dir/stco/loop_test.cpp.o.d"
  "CMakeFiles/test_stco.dir/stco/pareto_test.cpp.o"
  "CMakeFiles/test_stco.dir/stco/pareto_test.cpp.o.d"
  "CMakeFiles/test_stco.dir/stco/report_test.cpp.o"
  "CMakeFiles/test_stco.dir/stco/report_test.cpp.o.d"
  "CMakeFiles/test_stco.dir/stco/rl_test.cpp.o"
  "CMakeFiles/test_stco.dir/stco/rl_test.cpp.o.d"
  "test_stco"
  "test_stco.pdb"
  "test_stco[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
