# Empty dependencies file for test_stco.
# This may be replaced when dependencies are built.
