file(REMOVE_RECURSE
  "CMakeFiles/test_tcad.dir/tcad/drift_diffusion_test.cpp.o"
  "CMakeFiles/test_tcad.dir/tcad/drift_diffusion_test.cpp.o.d"
  "CMakeFiles/test_tcad.dir/tcad/materials_test.cpp.o"
  "CMakeFiles/test_tcad.dir/tcad/materials_test.cpp.o.d"
  "CMakeFiles/test_tcad.dir/tcad/poisson_test.cpp.o"
  "CMakeFiles/test_tcad.dir/tcad/poisson_test.cpp.o.d"
  "CMakeFiles/test_tcad.dir/tcad/property_test.cpp.o"
  "CMakeFiles/test_tcad.dir/tcad/property_test.cpp.o.d"
  "CMakeFiles/test_tcad.dir/tcad/transport_test.cpp.o"
  "CMakeFiles/test_tcad.dir/tcad/transport_test.cpp.o.d"
  "test_tcad"
  "test_tcad.pdb"
  "test_tcad[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
