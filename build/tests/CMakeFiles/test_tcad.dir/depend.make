# Empty dependencies file for test_tcad.
# This may be replaced when dependencies are built.
