
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/flow/bench_format_test.cpp" "tests/CMakeFiles/test_flow.dir/flow/bench_format_test.cpp.o" "gcc" "tests/CMakeFiles/test_flow.dir/flow/bench_format_test.cpp.o.d"
  "/root/repo/tests/flow/io_test.cpp" "tests/CMakeFiles/test_flow.dir/flow/io_test.cpp.o" "gcc" "tests/CMakeFiles/test_flow.dir/flow/io_test.cpp.o.d"
  "/root/repo/tests/flow/liberty_reader_test.cpp" "tests/CMakeFiles/test_flow.dir/flow/liberty_reader_test.cpp.o" "gcc" "tests/CMakeFiles/test_flow.dir/flow/liberty_reader_test.cpp.o.d"
  "/root/repo/tests/flow/logic_sim_test.cpp" "tests/CMakeFiles/test_flow.dir/flow/logic_sim_test.cpp.o" "gcc" "tests/CMakeFiles/test_flow.dir/flow/logic_sim_test.cpp.o.d"
  "/root/repo/tests/flow/netlist_test.cpp" "tests/CMakeFiles/test_flow.dir/flow/netlist_test.cpp.o" "gcc" "tests/CMakeFiles/test_flow.dir/flow/netlist_test.cpp.o.d"
  "/root/repo/tests/flow/optimize_test.cpp" "tests/CMakeFiles/test_flow.dir/flow/optimize_test.cpp.o" "gcc" "tests/CMakeFiles/test_flow.dir/flow/optimize_test.cpp.o.d"
  "/root/repo/tests/flow/path_test.cpp" "tests/CMakeFiles/test_flow.dir/flow/path_test.cpp.o" "gcc" "tests/CMakeFiles/test_flow.dir/flow/path_test.cpp.o.d"
  "/root/repo/tests/flow/sta_test.cpp" "tests/CMakeFiles/test_flow.dir/flow/sta_test.cpp.o" "gcc" "tests/CMakeFiles/test_flow.dir/flow/sta_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/stco_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stco_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/stco_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/tcad/CMakeFiles/stco_tcad.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/stco_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/surrogate/CMakeFiles/stco_surrogate.dir/DependInfo.cmake"
  "/root/repo/build/src/compact/CMakeFiles/stco_compact.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/stco_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/stco_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/charlib/CMakeFiles/stco_charlib.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/stco_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/stco/CMakeFiles/stco_stco.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
