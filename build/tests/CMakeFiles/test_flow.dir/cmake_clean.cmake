file(REMOVE_RECURSE
  "CMakeFiles/test_flow.dir/flow/bench_format_test.cpp.o"
  "CMakeFiles/test_flow.dir/flow/bench_format_test.cpp.o.d"
  "CMakeFiles/test_flow.dir/flow/io_test.cpp.o"
  "CMakeFiles/test_flow.dir/flow/io_test.cpp.o.d"
  "CMakeFiles/test_flow.dir/flow/liberty_reader_test.cpp.o"
  "CMakeFiles/test_flow.dir/flow/liberty_reader_test.cpp.o.d"
  "CMakeFiles/test_flow.dir/flow/logic_sim_test.cpp.o"
  "CMakeFiles/test_flow.dir/flow/logic_sim_test.cpp.o.d"
  "CMakeFiles/test_flow.dir/flow/netlist_test.cpp.o"
  "CMakeFiles/test_flow.dir/flow/netlist_test.cpp.o.d"
  "CMakeFiles/test_flow.dir/flow/optimize_test.cpp.o"
  "CMakeFiles/test_flow.dir/flow/optimize_test.cpp.o.d"
  "CMakeFiles/test_flow.dir/flow/path_test.cpp.o"
  "CMakeFiles/test_flow.dir/flow/path_test.cpp.o.d"
  "CMakeFiles/test_flow.dir/flow/sta_test.cpp.o"
  "CMakeFiles/test_flow.dir/flow/sta_test.cpp.o.d"
  "test_flow"
  "test_flow.pdb"
  "test_flow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
