file(REMOVE_RECURSE
  "CMakeFiles/test_surrogate.dir/surrogate/encoding_test.cpp.o"
  "CMakeFiles/test_surrogate.dir/surrogate/encoding_test.cpp.o.d"
  "CMakeFiles/test_surrogate.dir/surrogate/surrogate_test.cpp.o"
  "CMakeFiles/test_surrogate.dir/surrogate/surrogate_test.cpp.o.d"
  "test_surrogate"
  "test_surrogate.pdb"
  "test_surrogate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
