file(REMOVE_RECURSE
  "CMakeFiles/test_compact.dir/compact/extraction_test.cpp.o"
  "CMakeFiles/test_compact.dir/compact/extraction_test.cpp.o.d"
  "CMakeFiles/test_compact.dir/compact/metrics_test.cpp.o"
  "CMakeFiles/test_compact.dir/compact/metrics_test.cpp.o.d"
  "CMakeFiles/test_compact.dir/compact/property_test.cpp.o"
  "CMakeFiles/test_compact.dir/compact/property_test.cpp.o.d"
  "CMakeFiles/test_compact.dir/compact/tft_model_test.cpp.o"
  "CMakeFiles/test_compact.dir/compact/tft_model_test.cpp.o.d"
  "CMakeFiles/test_compact.dir/compact/variation_test.cpp.o"
  "CMakeFiles/test_compact.dir/compact/variation_test.cpp.o.d"
  "test_compact"
  "test_compact.pdb"
  "test_compact[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
