# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_numeric[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_tcad[1]_include.cmake")
include("/root/repo/build/tests/test_gnn[1]_include.cmake")
include("/root/repo/build/tests/test_surrogate[1]_include.cmake")
include("/root/repo/build/tests/test_spice[1]_include.cmake")
include("/root/repo/build/tests/test_cells[1]_include.cmake")
include("/root/repo/build/tests/test_charlib[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_stco[1]_include.cmake")
include("/root/repo/build/tests/test_compact[1]_include.cmake")
