# Empty dependencies file for library_export.
# This may be replaced when dependencies are built.
