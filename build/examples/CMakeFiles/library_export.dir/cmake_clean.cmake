file(REMOVE_RECURSE
  "CMakeFiles/library_export.dir/library_export.cpp.o"
  "CMakeFiles/library_export.dir/library_export.cpp.o.d"
  "library_export"
  "library_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/library_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
