# Empty compiler generated dependencies file for stco_exploration.
# This may be replaced when dependencies are built.
