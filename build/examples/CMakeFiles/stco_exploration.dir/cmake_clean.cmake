file(REMOVE_RECURSE
  "CMakeFiles/stco_exploration.dir/stco_exploration.cpp.o"
  "CMakeFiles/stco_exploration.dir/stco_exploration.cpp.o.d"
  "stco_exploration"
  "stco_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stco_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
