file(REMOVE_RECURSE
  "CMakeFiles/cell_library_characterization.dir/cell_library_characterization.cpp.o"
  "CMakeFiles/cell_library_characterization.dir/cell_library_characterization.cpp.o.d"
  "cell_library_characterization"
  "cell_library_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_library_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
