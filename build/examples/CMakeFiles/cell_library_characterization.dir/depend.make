# Empty dependencies file for cell_library_characterization.
# This may be replaced when dependencies are built.
