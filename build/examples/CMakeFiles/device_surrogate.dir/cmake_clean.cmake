file(REMOVE_RECURSE
  "CMakeFiles/device_surrogate.dir/device_surrogate.cpp.o"
  "CMakeFiles/device_surrogate.dir/device_surrogate.cpp.o.d"
  "device_surrogate"
  "device_surrogate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
