# Empty dependencies file for device_surrogate.
# This may be replaced when dependencies are built.
